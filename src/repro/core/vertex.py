"""The vertex programming model (paper section 2.2).

A vertex implements two callbacks and may invoke two system methods::

    v.on_recv(input_port, records, timestamp)   # a message arrived
    v.on_notify(timestamp)                      # all messages <= t delivered

    self.send_by(output_port, records, timestamp)
    self.notify_at(timestamp)

The system guarantees that ``on_notify(t)`` runs only after no further
``on_recv(..., t')`` with ``t' <= t`` can occur.  In exchange, callbacks
running at time ``t`` may only send or request notification at times
``t' >= t`` — the "no messages backwards in time" rule, which the harness
enforces.

Messages are *batches*: ``records`` is a list, matching Naiad's practice
of moving arrays of records through channels to amortise per-record
overhead.

Vertices optionally implement ``checkpoint()``/``restore(state)``
(section 3.4); the default implementation snapshots the instance's
attribute dictionary, which suffices for vertices whose state is plain
Python data.

Checkpoint state must be *picklable*: the section 3.4 durable journal
and the multiprocessing execution backend (:mod:`repro.parallel`) both
ship it across process boundaries.  Configuration a vertex received at
construction time — user functions, predicates, key selectors — is
immutable and often unpicklable (lambdas, closures, bound methods), so
subclasses list those attribute names in ``_CONFIG_ATTRS``; they are
excluded from the snapshot and left untouched by ``restore``, exactly
like the runtime-assigned transient attributes.
"""

from __future__ import annotations

import copy
from typing import Any, List, Optional, Tuple

from .timestamp import Timestamp


class Vertex:
    """Base class for all dataflow vertices.

    Subclasses override :meth:`on_recv` (and :meth:`on_notify` if they
    request notifications).  The runtime assigns ``stage``, ``worker``
    (the parallel index of this instance within its stage) and a private
    harness before any callback runs.
    """

    #: True pins every instance of this vertex class to the coordinator
    #: under the multiprocessing backend (repro.parallel): its callbacks
    #: run on the DES thread.  Set on vertex classes whose callbacks
    #: side-effect driver-side objects (subscriptions, probes).
    coordinator_only = False

    #: False declares that instances never call :meth:`notify_at` with a
    #: capability.  A loop scope whose stages all opt out this way can be
    #: *summarized* by the distributed runtime: its interior pointstamp
    #: churn stays scope-local and only boundary projections are
    #: broadcast (see ``runtime.cluster``).  Leave True when in doubt —
    #: a notifying vertex inside a summarized scope is rejected at
    #: ``notify_at`` time with a :class:`TimestampViolation`.
    notifies = True

    def __init__(self):
        self.stage = None
        self.worker: int = 0
        self._harness = None

    # ------------------------------------------------------------------
    # Callbacks (override in subclasses).
    # ------------------------------------------------------------------

    def on_recv(self, input_port: int, records: List[Any], timestamp: Timestamp) -> None:
        raise NotImplementedError(
            "%s does not implement on_recv" % type(self).__name__
        )

    def on_notify(self, timestamp: Timestamp) -> None:
        """Called once all messages at times <= ``timestamp`` are delivered."""

    def on_recv_batch(self, input_port: int, batch: Any, timestamp: Timestamp) -> None:
        """Columnar fast path: a :class:`repro.columnar.ColumnarBatch`
        arrived (only ever under the opt-in columnar data plane).

        The default implementation is the automatic record-list shim —
        it materializes the batch and calls :meth:`on_recv`, so every
        existing vertex works unchanged.  Hot operators override this to
        run directly on the batch's column arrays, skipping per-record
        tuple construction; an override must be observably identical to
        the shim (same outputs, same order, same state) because the
        runtime chooses between batch and record delivery freely.
        """
        self.on_recv(input_port, batch.to_records(), timestamp)

    # ------------------------------------------------------------------
    # System methods (provided).
    # ------------------------------------------------------------------

    def send_by(self, output_port: int, records: List[Any], timestamp: Timestamp) -> None:
        """Send a batch of records on an output port.

        The timestamp is given on the *input side* of this stage; system
        stages (ingress/egress/feedback) have the appropriate adjustment
        applied by the runtime, so user code never manipulates loop
        counters directly.
        """
        self._harness.send(self, output_port, records, timestamp)

    def notify_at(self, timestamp: Timestamp, capability: bool = True) -> None:
        """Request an :meth:`on_notify` callback at ``timestamp``.

        With ``capability=False`` the request decouples the guarantee
        time from the capability time (section 2.4): the callback is
        still guaranteed not to run before ``timestamp`` is complete,
        but it renounces the ability to produce new events (its
        capability time is ⊤).  Such "state purging" notifications do
        not occupy a pointstamp, so they never delay other
        notifications and introduce no coordination; the harness
        rejects any ``send_by``/``notify_at`` made from their callback.
        """
        self._harness.request_notification(self, timestamp, capability)

    @property
    def peers(self) -> int:
        """Total number of parallel workers executing this stage.

        ``self.worker`` identifies this instance among them.  Libraries
        use this for explicit data placement (e.g. AllReduce chunk
        ownership and broadcast fan-out).
        """
        return self._harness.total_workers

    # ------------------------------------------------------------------
    # Fault tolerance hooks (section 3.4).
    # ------------------------------------------------------------------

    #: Attributes excluded from the default checkpoint.
    _TRANSIENT_ATTRS = ("stage", "worker", "_harness")

    #: Constructor-supplied configuration excluded from the default
    #: checkpoint alongside the transient attributes.  Subclasses list
    #: the names of user-function attributes here (lambdas, closures and
    #: bound methods do not pickle); configuration is immutable, so
    #: leaving it out of the snapshot loses nothing on restore.
    _CONFIG_ATTRS: Tuple[str, ...] = ()

    def _checkpoint_excluded(self, key: str) -> bool:
        return key in self._TRANSIENT_ATTRS or key in self._CONFIG_ATTRS

    def checkpoint(self) -> Any:
        """Return a snapshot of this vertex's state (default: deep copy).

        The snapshot excludes runtime-transient attributes and the
        immutable configuration named by ``_CONFIG_ATTRS``, and must be
        picklable — it travels through the durable journal and between
        the coordinator and pool workers.
        """
        state = {
            key: value
            for key, value in self.__dict__.items()
            if not self._checkpoint_excluded(key)
        }
        return copy.deepcopy(state)

    def restore(self, state: Any) -> None:
        """Reset this vertex's state from a :meth:`checkpoint` snapshot.

        Attributes acquired *after* the checkpoint (and neither
        transient nor configuration) are removed, so restore really is a
        rollback: a vertex that lazily created per-timestamp state past
        the snapshot point does not keep it into the replayed execution.
        """
        stale = [
            key
            for key in self.__dict__
            if not self._checkpoint_excluded(key) and key not in state
        ]
        for key in stale:
            delattr(self, key)
        for key, value in copy.deepcopy(state).items():
            setattr(self, key, value)

    def __repr__(self) -> str:
        name = self.stage.name if self.stage is not None else "unbound"
        return "%s(%s[%d])" % (type(self).__name__, name, self.worker)


class ForwardingVertex(Vertex):
    """System vertex used for ingress, egress and feedback stages.

    It forwards every incoming batch on output port 0; the runtime
    applies the stage's timestamp action (push / pop / increment a loop
    counter).  A feedback stage may bound the number of iterations by
    dropping messages whose innermost loop counter has reached
    ``max_iterations``, which is how bounded loops terminate cleanly.
    """

    notifies = False

    def __init__(self, max_iterations: Optional[int] = None):
        super().__init__()
        self.max_iterations = max_iterations

    def on_recv(self, input_port: int, records: List[Any], timestamp: Timestamp) -> None:
        if self.max_iterations is not None:
            # The runtime will increment the innermost counter on send.
            if timestamp.counters[-1] + 1 >= self.max_iterations:
                return
        self.send_by(0, records, timestamp)

    def on_recv_batch(self, input_port: int, batch: Any, timestamp: Timestamp) -> None:
        # Forwarding never inspects records, so a columnar batch passes
        # through whole — no materialization at scope boundaries.
        self.on_recv(input_port, batch, timestamp)
