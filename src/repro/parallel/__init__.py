"""Multiprocessing vertex execution for the simulated cluster runtime.

The single-threaded discrete-event simulator stays the sole coordinator
of virtual time and the progress protocol; :class:`VertexPool` only
executes the *bodies* of vertex callbacks in persistent forked worker
processes, returning their recorded effects for the coordinator to
apply in the original deterministic order.  Results — virtual time,
event ordering, progress traffic, outputs — are bit-identical to the
inline backend; only wall-clock time changes.  See DESIGN.md
("Parallel execution: the coordinator/pool contract").
"""

from .pool import DEFAULT_POOL_WORKERS, VertexPool, fork_available

__all__ = ["DEFAULT_POOL_WORKERS", "VertexPool", "fork_available"]
