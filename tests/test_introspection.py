"""Tests for progress probes and DOT graph rendering."""


from repro import Computation
from repro.core.dot import to_dot
from repro.lib import Stream
from repro.runtime import ClusterComputation


def build_probed(comp):
    inp = comp.new_input()
    probe = (
        Stream.from_input(inp)
        .select_many(str.split)
        .count_by(lambda w: w)
        .probe()
    )
    comp.build()
    return inp, probe


class TestProbe:
    def test_tracks_epoch_completion(self):
        comp = Computation()
        inp, probe = build_probed(comp)
        assert not probe.done(0)          # epoch 0 still open at the input
        assert probe.first_incomplete() == 0
        inp.on_next(["a b"])
        assert not probe.done(0)          # messages still queued
        comp.run()
        assert probe.done(0)
        assert not probe.done(1)
        assert probe.first_incomplete() == 1
        inp.on_completed()
        comp.run()
        assert probe.done(10)
        assert probe.first_incomplete() is None

    def test_probe_on_cluster_is_conservative(self):
        comp = ClusterComputation(2, 2)
        inp, probe = build_probed(comp)
        inp.on_next(["x y z"])
        # Run event-by-event; the probe may lag but must never claim
        # completion while any view still sees epoch-0 work.
        claimed_done_at = None
        steps = 0
        while comp.sim.step():
            steps += 1
            if claimed_done_at is None and probe.done(0):
                claimed_done_at = steps
                # At claim time, no view may hold epoch-0 work.
                for view in comp.views:
                    for p in view.state.occurrence:
                        assert p.timestamp.epoch > 0
        assert claimed_done_at is not None

    def test_driver_loop_with_probe(self):
        # The idiomatic "feed and wait" driver: advance until the probe
        # confirms the previous epoch is fully processed.
        comp = Computation()
        inp, probe = build_probed(comp)
        for epoch in range(3):
            inp.on_next(["w%d" % epoch])
            comp.run()
            assert probe.done(epoch)
        inp.on_completed()
        comp.run()


class TestDotRendering:
    def build_loop_graph(self):
        # The assertions below describe the *unoptimized* graph shape;
        # pin optimize=False so a REPRO_FUSION=1 environment does not
        # rewrite the structure under test (test_opt covers the fused
        # rendering).
        comp = Computation(optimize=False)
        inp = comp.new_input("edges")
        out = (
            Stream.from_input(inp)
            .iterate(lambda s: s.select(lambda x: x - 1).where(lambda x: x > 0))
            .count_by(lambda x: x)
        )
        out.subscribe(lambda t, r: None)
        comp.build()
        return comp

    def test_contains_every_stage_and_connector(self):
        comp = self.build_loop_graph()
        dot = to_dot(comp.graph)
        for stage in comp.graph.stages:
            assert "s%d " % stage.index in dot or "s%d [" % stage.index in dot
        assert dot.count("->") == len(comp.graph.connectors)

    def test_loop_context_becomes_cluster(self):
        dot = to_dot(self.build_loop_graph().graph)
        assert "subgraph cluster_" in dot
        assert "depth 1" in dot

    def test_valid_structure(self):
        dot = to_dot(self.build_loop_graph().graph, name="my graph")
        assert dot.startswith('digraph "my graph" {')
        assert dot.endswith("}")
        # Balanced braces.
        assert dot.count("{") == dot.count("}")

    def test_exchange_edges_marked(self):
        dot = to_dot(self.build_loop_graph().graph)
        assert "⇄" in dot  # the count_by exchange

    def test_system_stages_styled(self):
        dot = to_dot(self.build_loop_graph().graph)
        assert "rarrow" in dot      # ingress
        assert "larrow" in dot      # egress
        assert "invtriangle" in dot # feedback
