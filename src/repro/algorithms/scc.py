"""Strongly connected components (Table 1).

The paper's SCC (161 lines, their second-longest application) layers
repeated reachability computations on the WCC machinery.  This is the
classic forward-backward coloring scheme expressed with timely dataflow
label propagation:

1. *Color*: propagate min node ids along forward edges; ``color[v]`` is
   the smallest id that can reach ``v``, and nodes with
   ``color[r] == r`` are roots.
2. *Mark*: propagate min ids along *reversed* edges restricted to
   same-color nodes; a node whose backward label equals its color can
   also reach its root, so root and node are strongly connected.
3. Extract those SCCs, drop their nodes, repeat on the remainder.

Each propagation runs as one input epoch of a single dataflow (the
per-epoch collection semantics of section 4.2 make consecutive phases
independent), with the driver loop feeding phase inputs — the pattern
the paper calls "algorithms that perform more and sparser iterations",
profitable because state stays in memory between phases.
"""

from __future__ import annotations

from typing import Any, Dict, List, Set, Tuple

from ..lib.stream import Stream
from .connectivity import label_propagation

Edge = Tuple[Any, Any]


def strongly_connected_components(
    computation_factory,
    edges: List[Edge],
    max_rounds: int = 64,
) -> Dict[Any, Any]:
    """Compute SCC labels (smallest member id per component).

    ``computation_factory`` builds a fresh computation per call —
    either :class:`repro.core.Computation` or a configured
    :class:`repro.runtime.ClusterComputation` — so Table 1 benchmarks
    can run the identical algorithm on the simulated cluster.
    """
    comp = computation_factory()
    inp = comp.new_input()
    results: Dict[int, Dict[Any, Any]] = {}

    def collect(timestamp, records):
        epoch = results.setdefault(timestamp.epoch, {})
        for node, label in records:
            if node not in epoch or label < epoch[node]:
                epoch[node] = label

    arcs = Stream.from_input(inp)
    label_propagation(arcs).subscribe(collect)
    comp.build()

    nodes: Set[Any] = set()
    for u, v in edges:
        nodes.add(u)
        nodes.add(v)
    remaining_edges = list(edges)
    remaining_nodes = set(nodes)
    assignment: Dict[Any, Any] = {}
    epoch = 0

    for _round in range(max_rounds):
        if not remaining_nodes:
            break
        # Phase 1: forward coloring.  Isolated nodes (no remaining
        # edges) participate via self-arcs so they still get colors.
        forward = [(u, v) for u, v in remaining_edges] + [
            (n, n) for n in remaining_nodes
        ]
        inp.on_next(forward)
        comp.run()
        colors = results.pop(epoch)
        epoch += 1
        # Phase 2: backward marking within color classes.
        backward = [
            (v, u)
            for u, v in remaining_edges
            if colors[u] == colors[v]
        ] + [(n, n) for n in remaining_nodes]
        inp.on_next(backward)
        comp.run()
        marks = results.pop(epoch)
        epoch += 1
        # A node is in its root's SCC iff its backward label reached the
        # root (the minimum of its color class).
        done: Set[Any] = set()
        for node in remaining_nodes:
            if marks[node] == colors[node]:
                assignment[node] = colors[node]
                done.add(node)
        remaining_nodes -= done
        remaining_edges = [
            (u, v)
            for u, v in remaining_edges
            if u not in assignment and v not in assignment
        ]
    else:
        raise RuntimeError("SCC did not converge within max_rounds")

    inp.on_completed()
    comp.run()
    return assignment


def scc_oracle(edges: List[Edge]) -> Dict[Any, Any]:
    """Reference SCC labels via iterative Tarjan."""
    graph: Dict[Any, List[Any]] = {}
    for u, v in edges:
        graph.setdefault(u, []).append(v)
        graph.setdefault(v, [])
    index: Dict[Any, int] = {}
    lowlink: Dict[Any, int] = {}
    on_stack: Set[Any] = set()
    stack: List[Any] = []
    labels: Dict[Any, Any] = {}
    counter = [0]

    for start in graph:
        if start in index:
            continue
        work = [(start, iter(graph[start]))]
        index[start] = lowlink[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(graph[succ])))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                label = min(component)
                for member in component:
                    labels[member] = label
    return labels
