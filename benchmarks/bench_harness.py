"""Shared utilities for the paper-reproduction benchmarks.

Every ``bench_*.py`` file regenerates one table or figure from the
paper's evaluation: it really executes the workload on the simulated
cluster (and the relevant baselines), prints rows shaped like the
paper's, asserts the qualitative findings (who wins, by roughly what
factor, where the knees fall), and appends a report to
``benchmarks/results/``.  Absolute numbers come from calibrated cost
models, not the authors' hardware — EXPERIMENTS.md records both sides.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Optional, Sequence

from repro.obs import TraceSink, collect_profile, critical_path

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")

#: Set REPRO_TRACE=1 to record a full event trace during benchmark runs
#: (and REPRO_TRACE_DIR to also dump the JSONL next to the reports).
TRACE_ENV = "REPRO_TRACE"

#: Execution backend for the simulated cluster: "inline" runs vertex
#: callbacks on the DES thread, "mp" offloads their bodies to a fork
#: pool (bit-identical virtual-time results; see repro.parallel).
BACKEND_ENV = "REPRO_BACKEND"
POOL_WORKERS_ENV = "REPRO_POOL_WORKERS"


def selected_backend() -> str:
    """The execution backend benchmarks run under (defaults inline)."""
    return os.environ.get(BACKEND_ENV, "inline") or "inline"


def backend_lines(computation) -> List[str]:
    """One-line description of the backend a finished run used."""
    pool = getattr(computation, "pool", None)
    if pool is None:
        return ["backend: inline (vertex callbacks on the DES thread)"]
    return [
        "backend: mp (%d pool children, %d/%d claims offloaded)"
        % (pool.size, pool.tasks_offloaded, pool.claims_made)
    ]


def tracing_enabled() -> bool:
    return os.environ.get(TRACE_ENV, "") not in ("", "0")


def attach_tracing(computation, enabled: Optional[bool] = None) -> Optional[TraceSink]:
    """Attach a fresh TraceSink when tracing is on; None otherwise."""
    if enabled is None:
        enabled = tracing_enabled()
    if not enabled:
        return None
    sink = TraceSink()
    computation.attach_trace_sink(sink)
    return sink


def profile_lines(computation) -> List[str]:
    """The DES self-profile of a finished run (repro.obs.profile)."""
    return collect_profile(computation).lines()


def critical_path_lines(sink: Optional[TraceSink], top_k: int = 5) -> List[str]:
    """SnailTrail-style critical-path summary of a recorded trace."""
    if sink is None or len(sink) == 0:
        return []
    summary = critical_path(list(sink), top_k=top_k)
    lines = summary.lines()
    directory = os.environ.get("%s_DIR" % TRACE_ENV, "")
    if directory:
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, "trace-%06d.jsonl" % len(sink))
        sink.dump_jsonl(path)
        lines.append("trace written to %s" % path)
    return lines


def report(name: str, lines: Iterable[str]) -> str:
    """Print a benchmark report and persist it under results/."""
    text = "\n".join(lines)
    banner = "\n=== %s ===\n%s\n" % (name, text)
    print(banner)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "%s.txt" % name), "w") as handle:
        handle.write(text + "\n")
    return banner


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> List[str]:
    """Simple aligned text table."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt(row):
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rendered)
    return lines


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of a list of samples."""
    if not values:
        raise ValueError("no samples")
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return ordered[index]


def human_time(seconds: float) -> str:
    if seconds >= 1.0:
        return "%.2f s" % seconds
    if seconds >= 1e-3:
        return "%.2f ms" % (seconds * 1e3)
    return "%.0f us" % (seconds * 1e6)


def human_bytes(count: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if count < 1024:
            return "%.1f %s" % (count, unit)
        count /= 1024.0
    return "%.1f TB" % count
