"""Zero-copy effect transfer: a shared-memory scratch arena per child.

Without it, every :class:`~repro.columnar.ColumnarBatch` a pool child
emits is pickled into the result pipe (compact — ``__reduce__`` ships
raw column bytes — but still framed, copied into the pipe buffer,
copied out, and unpickled).  With it, the child memcpys the column
blobs into a ``multiprocessing.shared_memory`` segment the coordinator
mapped before the fork and sends only a tiny :class:`RingRef` (offset +
column lengths) through the pipe; the coordinator rebuilds the arrays
straight from the shared pages.

Protocol (single-producer, single-consumer, one direction):

- One segment per child, created by the coordinator *before* forking,
  so the child inherits the mapping (fork shares ``MAP_SHARED`` pages;
  nothing is re-opened by name).
- The child owns the write cursor and resets it at the start of every
  task.  This is safe because the pool runs **one outstanding task per
  child** and the coordinator hydrates every ``RingRef`` in a reply at
  receive time, *before* pumping the next task to that child — by the
  time the child could overwrite the arena, no live reference into it
  remains.
- A batch that does not fit in the remaining arena space falls back to
  the pickle path (``put`` returns None and the batch rides the pipe),
  so arena size is a performance knob, never a correctness limit.
"""

from __future__ import annotations

from array import array
from typing import Optional, Tuple

from ..columnar import ColumnarBatch, Schema

try:  # pragma: no cover - platform gate
    from multiprocessing import shared_memory as _shm
except Exception:  # pragma: no cover
    _shm = None


def shared_memory_available() -> bool:
    return _shm is not None


class RingRef:
    """A pipe-sized stand-in for a batch parked in the shared arena."""

    __slots__ = ("offset", "lengths", "typecodes", "scalar")

    def __init__(
        self,
        offset: int,
        lengths: Tuple[int, ...],
        typecodes: Tuple[str, ...],
        scalar: bool,
    ):
        self.offset = offset
        self.lengths = lengths
        self.typecodes = typecodes
        self.scalar = scalar

    def __reduce__(self):
        return (RingRef, (self.offset, self.lengths, self.typecodes, self.scalar))

    def __repr__(self) -> str:
        return "RingRef(@%d, %r)" % (self.offset, self.typecodes)


#: Default arena size per child; batches larger than the arena simply
#: take the pickle path.
DEFAULT_RING_BYTES = 4 << 20


class EffectRing:
    """One child's shared-memory scratch arena (see module docstring)."""

    __slots__ = ("segment", "buffer", "size", "cursor", "_schemas")

    def __init__(self, size: int = DEFAULT_RING_BYTES):
        if _shm is None:
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        self.segment = _shm.SharedMemory(create=True, size=size)
        self.buffer = self.segment.buf
        self.size = size
        self.cursor = 0
        #: (typecodes, scalar) -> Schema, so hydration reuses objects.
        self._schemas = {}

    # -- child side ----------------------------------------------------

    def reset(self) -> None:
        self.cursor = 0

    def put(self, batch: ColumnarBatch) -> Optional[RingRef]:
        """Park a batch's columns in the arena; None when out of space."""
        views = [memoryview(column).cast("B") for column in batch.columns]
        total = sum(len(view) for view in views)
        offset = self.cursor
        if offset + total > self.size:
            return None
        buffer = self.buffer
        position = offset
        lengths = []
        for view in views:
            nbytes = len(view)
            buffer[position : position + nbytes] = view
            position += nbytes
            lengths.append(nbytes)
        self.cursor = position
        schema = batch.schema
        return RingRef(offset, tuple(lengths), schema.typecodes, schema.scalar)

    # -- coordinator side ----------------------------------------------

    def get(self, ref: RingRef) -> ColumnarBatch:
        """Rebuild the batch a :class:`RingRef` points at (copies out)."""
        key = (ref.typecodes, ref.scalar)
        schema = self._schemas.get(key)
        if schema is None:
            schema = self._schemas[key] = Schema(ref.typecodes, ref.scalar)
        buffer = self.buffer
        position = ref.offset
        columns = []
        for typecode, nbytes in zip(ref.typecodes, ref.lengths):
            column = array(typecode)
            column.frombytes(buffer[position : position + nbytes])
            position += nbytes
            columns.append(column)
        return ColumnarBatch(schema, columns)

    # -- lifecycle -----------------------------------------------------

    def close(self, unlink: bool = False) -> None:
        try:
            self.buffer = None
            self.segment.close()
            if unlink:
                self.segment.unlink()
        except Exception:
            pass
