"""Figure 6b: global barrier (coordination) latency versus cluster size.

The paper's microbenchmark: a cyclic dataflow whose vertices exchange no
data and simply request and receive completeness notifications; no
iteration proceeds until every notification of the previous iteration
is delivered.  The paper reports a 753 µs median at 64 computers and a
95th percentile that degrades with cluster size as micro-stragglers
(packet loss, GC) bite.

Here each iteration is one frontier advance of the distributed progress
protocol with local+global accumulation, under a network with a small
packet-loss probability and GC pauses (section 3.5's mitigated
configuration: 20 ms retransmit timers, Nagle off).
"""

from repro.core import Timestamp, Vertex
from repro.lib import Stream
from repro.runtime import ClusterComputation
from repro.sim import NetworkConfig

from bench_harness import format_table, human_time, percentile, report

ITERATIONS = 120
COMPUTERS = [2, 4, 8, 16, 32]


class BarrierVertex(Vertex):
    """Requests a notification per iteration and records delivery times."""

    def __init__(self, iterations, clock, samples):
        super().__init__()
        self.iterations = iterations
        self.clock = clock
        self.samples = samples

    def on_recv(self, port, records, timestamp: Timestamp) -> None:
        self.notify_at(timestamp)

    def on_notify(self, timestamp: Timestamp) -> None:
        if self.worker == 0:
            self.samples.append(self.clock())
        iteration = timestamp.counters[-1]
        if iteration + 1 < self.iterations:
            self.notify_at(timestamp.incremented())


def run_barrier(num_computers: int, seed: int = 0):
    comp = ClusterComputation(
        num_processes=num_computers,
        workers_per_process=1,
        progress_mode="local+global",
        network=NetworkConfig(
            packet_loss_probability=0.0004,
            retransmit_timeout=20e-3,
            gc_interval=2.0,
            gc_pause=5e-3,
        ),
        seed=seed,
    )
    samples = []
    inp = comp.new_input()
    with comp.scope("barrier", max_iterations=ITERATIONS) as loop:
        stage = loop.stage(
            "barrier",
            lambda s, w: BarrierVertex(ITERATIONS, lambda: comp.now, samples),
            2,
            1,
        )
        loop.enter(Stream.from_input(inp)).connect_to(stage, 0)
        loop.feed(Stream(comp, stage, 0))
        loop.feedback.connect_to(stage, 1)
    comp.build()
    inp.on_next(list(range(num_computers)))
    inp.on_completed()
    comp.run()
    assert comp.drained(), comp.debug_state()
    intervals = [b - a for a, b in zip(samples, samples[1:])]
    return intervals


def test_fig6b_barrier_latency(benchmark):
    def experiment():
        results = {}
        for computers in COMPUTERS:
            intervals = run_barrier(computers)
            results[computers] = {
                "median": percentile(intervals, 0.50),
                "q1": percentile(intervals, 0.25),
                "q3": percentile(intervals, 0.75),
                "p95": percentile(intervals, 0.95),
            }
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    table = format_table(
        ["computers", "q1", "median", "q3", "95th"],
        [
            (
                c,
                human_time(r["q1"]),
                human_time(r["median"]),
                human_time(r["q3"]),
                human_time(r["p95"]),
            )
            for c, r in sorted(results.items())
        ],
    )
    report("fig6b_barrier_latency", table)

    smallest = results[COMPUTERS[0]]
    largest = results[COMPUTERS[-1]]
    # Median barrier latency stays sub-2ms even at the largest size
    # (the paper: 753 us at 64 computers).
    assert largest["median"] < 2e-3
    # The straggler tail: the 95th percentile degrades with cluster
    # size much faster than the median does.
    assert largest["p95"] / largest["median"] > smallest["p95"] / smallest["median"]
    assert largest["p95"] > 4 * largest["median"]
    # Medians grow only modestly with cluster size.
    assert largest["median"] < 8 * smallest["median"]
