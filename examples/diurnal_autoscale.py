"""Elastic autoscaling under a diurnal load curve.

The Figure 1 application — incremental connected components over tweet
mentions, queried interactively for the top hashtag in a user's
component — fed by a tweet stream whose rate follows a day: a quiet
morning, a midday peak an order of magnitude taller, a quiet evening.
A metrics-driven :class:`repro.runtime.Autoscaler` watches per-host
utilization from the live trace stream and rescales the running
cluster: it grows by a process when the peak saturates the workers and
drains one back out when the load falls away — all while the query
stream keeps answering.

Membership changes ride the async-cut migration path (only the moving
workers' state ships; the survivors keep their live state), so the
autoscaler is invisible in the outputs: every query is answered
exactly as a fixed-shape run answers it.

Run:  python examples/diurnal_autoscale.py
"""

from repro.algorithms import hashtag_component_app
from repro.lib import Stream
from repro.obs import TraceSink, membership_timeline
from repro.runtime import (
    AutoscalePolicy,
    Autoscaler,
    ClusterComputation,
    FaultTolerance,
)
from repro.workloads import TweetGenerator, TweetStreamConfig

#: Tweets per epoch over one simulated day: quiet -> peak -> quiet.
DIURNAL_CURVE = [5, 8, 120, 180, 180, 180, 120, 8, 5, 5, 8, 5]

#: Grow when a host sustains more than 1.2 busy workers, shrink when
#: the fleet idles below half a worker per host.
POLICY = AutoscalePolicy(
    interval=5e-5,
    high_utilization=1.2,
    low_utilization=0.5,
    sustain=3,
    cooldown=5e-3,
    min_processes=2,
    max_processes=4,
)


def make_stream():
    """The day's tweet batches, each with one component query."""
    generator = TweetGenerator(
        TweetStreamConfig(num_users=150, num_hashtags=12, seed=8)
    )
    epochs = []
    for epoch, rate in enumerate(DIURNAL_CURVE):
        batch = generator.batch(rate)
        queries = [(generator.query(), "q%d" % epoch)]
        epochs.append((batch, queries))
    return epochs


def run(autoscale=True):
    """The diurnal day, with or without the autoscaler.

    Returns ``(responses, comp, scaler)`` where ``responses`` maps each
    query epoch to its sorted answers and ``scaler`` is None for the
    fixed-shape run.
    """
    comp = ClusterComputation(
        num_processes=2,
        workers_per_process=2,
        fault_tolerance=FaultTolerance(
            mode="checkpoint",
            checkpoint_every=2,
            checkpoint_mode="async",
            recovery="reassign",
            restart_delay=0.02,
        ),
    )
    tweets_in = comp.new_input("tweets")
    queries_in = comp.new_input("queries")
    responses = {}
    hashtag_component_app(
        Stream.from_input(tweets_in),
        Stream.from_input(queries_in),
        lambda t, batch: responses.setdefault(t.epoch, []).extend(batch),
        fresh=True,
    )
    comp.build()
    scaler = None
    if autoscale:
        sink = TraceSink()
        comp.attach_trace_sink(sink)
        scaler = Autoscaler(comp, sink, POLICY).start()
    for batch, queries in make_stream():
        tweets_in.on_next(batch)
        queries_in.on_next(queries)
    tweets_in.on_completed()
    queries_in.on_completed()
    comp.run()
    assert comp.drained(), comp.debug_state().text
    return {epoch: sorted(batch) for epoch, batch in responses.items()}, comp, scaler


def main():
    print("== fixed shape (2 processes x 2 workers) ==")
    expected, fixed, _ = run(autoscale=False)
    print(
        "  %d epochs answered, virtual duration %.6f s"
        % (len(expected), fixed.now)
    )

    print()
    print("== same day with the autoscaler on ==")
    responses, comp, scaler = run(autoscale=True)
    for decision in scaler.decisions:
        if decision["kind"] == "add":
            print(
                "  t=%.6f s: utilization %.2f over %d hosts -> grow"
                % (decision["at"], decision["utilization"], decision["hosts"])
            )
        else:
            print(
                "  t=%.6f s: utilization %.2f over %d hosts -> drain "
                "process %d" % (
                    decision["at"],
                    decision["utilization"],
                    decision["hosts"],
                    decision["process"],
                )
            )
    for change in membership_timeline(comp._trace.events):
        print(
            "  membership generation %d: %s process %d, %d live hosts, "
            "workers %r migrated, blip %.6f s"
            % (
                change.generation,
                change.kind,
                change.process,
                change.live_count,
                change.moved_workers,
                change.blip,
            )
        )
    print("  final live processes: %r" % (comp.live_processes,))

    assert responses == expected, "autoscaling changed a query answer!"
    print()
    print(
        "the cluster grew for the peak and drained back down for the "
        "evening, and every query was answered identically to the "
        "fixed-shape run."
    )


if __name__ == "__main__":
    main()
