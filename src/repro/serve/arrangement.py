"""Shared arrangements: epoch-versioned operator indexes (`repro.serve`).

A *shared arrangement* is the serving layer's core data structure (the
differential-dataflow idea): the indexed state of one maintaining
operator, written exactly once per epoch by that operator and read by
arbitrarily many concurrent query sessions.  Instead of every session
privately accumulating the diff stream (O(sessions x state) memory and
update work, the pre-serving `QueryVertex` design), the maintaining
:class:`ArrangeVertex` applies each epoch's consolidated diffs to one
:class:`SharedArrangement` and readers snapshot it at a chosen epoch.

The arrangement's contract:

- **Versioned reads.** ``lookup(key, epoch)`` returns the records under
  ``key`` with positive accumulated multiplicity over all diffs of
  epochs ``<= epoch``.  Reads at any epoch between ``compacted_through``
  and the newest applied epoch are exact; the writer never mutates an
  epoch in place, it only appends the next epoch's log.
- **Log compaction.** As the frontier advances (and readers release
  their epochs), logs older than the retention window fold into the
  consolidated ``base``, so memory is O(live state + retain window), not
  O(history).  ``compacted_through`` rises monotonically; a read below
  it is answered from ``base`` (a consistent, *newer* snapshot) and the
  effective epoch is reported to the caller, which is how the stale SLO
  class measures true staleness.
- **Single writer.** Only the maintaining :class:`ArrangeVertex`
  mutates the arrangement, and only inside its own callbacks — so the
  state rides the vertex's ordinary checkpoint/restore/migration path
  (async cuts, partial rollback, rescaling) with no extra machinery.

Build arrangements with :meth:`repro.lib.stream.Stream.arrange_by` /
:meth:`repro.lib.incremental.Collection.arrange_by`, which return an
:class:`Arrangement` handle used by the :class:`~repro.serve.session.
SessionManager`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.timestamp import Timestamp
from ..core.vertex import Vertex
from ..lib.incremental import Diff, consolidate_diffs


class CompactedEpochError(LookupError):
    """A reader asked for an exact snapshot older than the compaction
    floor (use ``lookup(..., clamp=True)`` to accept the floor)."""


class SharedArrangement:
    """One operator's epoch-versioned index (plain picklable state).

    ``base`` holds the consolidated multiset as of ``compacted_through``;
    ``logs`` maps each later applied epoch to its per-key deltas;
    ``published`` is the newest applied epoch.  All methods are O(keys
    touched); ``lookup`` additionally scans the (bounded) log window.
    """

    def __init__(self, name: str, retain: int = 4):
        if retain < 1:
            raise ValueError("retain must be >= 1 (got %r)" % (retain,))
        self.name = name
        #: Epochs kept as logs behind ``published`` before folding.
        self.retain = retain
        #: key -> {record: multiplicity} as of ``compacted_through``.
        self.base: Dict[Any, Dict[Any, int]] = {}
        #: epoch -> key -> {record: delta}, for applied epochs > floor.
        self.logs: Dict[int, Dict[Any, Dict[Any, int]]] = {}
        #: Newest epoch whose diffs have been applied (-1 = none).
        self.published = -1
        #: All epochs <= this are folded into ``base`` (-1 = none).
        self.compacted_through = -1
        #: Counters for tests and metrics.
        self.publishes = 0
        self.compactions = 0

    # -- writer side ----------------------------------------------------

    def apply(self, epoch: int, keyed: Dict[Any, Dict[Any, int]]) -> None:
        """Append one epoch's consolidated deltas (writer only)."""
        if epoch <= self.compacted_through:
            raise ValueError(
                "arrangement %r: epoch %d is already compacted (through %d)"
                % (self.name, epoch, self.compacted_through)
            )
        if keyed:
            log = self.logs.setdefault(epoch, {})
            for key, deltas in keyed.items():
                slot = log.setdefault(key, {})
                for record, delta in deltas.items():
                    slot[record] = slot.get(record, 0) + delta
        if epoch > self.published:
            self.published = epoch
        self.publishes += 1

    def compact(self, floor: int) -> int:
        """Fold every log epoch ``<= floor`` into ``base``.

        ``floor`` is clamped to ``published - retain`` so the retention
        window always survives; callers additionally clamp it below any
        epoch a reader still holds.  Returns the number of epochs folded.
        """
        floor = min(floor, self.published - self.retain)
        folded = 0
        for epoch in sorted(e for e in self.logs if e <= floor):
            for key, deltas in self.logs.pop(epoch).items():
                slot = self.base.setdefault(key, {})
                for record, delta in deltas.items():
                    total = slot.get(record, 0) + delta
                    if total:
                        slot[record] = total
                    else:
                        del slot[record]
                if not slot:
                    del self.base[key]
            folded += 1
        if floor > self.compacted_through:
            self.compacted_through = floor
        if folded:
            self.compactions += 1
        return folded

    # -- reader side ----------------------------------------------------

    def read_epoch(self, epoch: int) -> int:
        """The epoch a read at ``epoch`` actually snapshots (>= epoch
        when compaction has folded past it)."""
        return max(epoch, self.compacted_through)

    def lookup(self, key: Any, epoch: int, clamp: bool = False) -> List[Any]:
        """Records under ``key`` with positive multiplicity at ``epoch``.

        Exact for ``epoch >= compacted_through``.  Below the floor the
        exact snapshot is gone: with ``clamp=True`` the read answers
        from the floor (callers report :meth:`read_epoch`), otherwise
        :class:`CompactedEpochError` is raised.
        """
        if epoch < self.compacted_through:
            if not clamp:
                raise CompactedEpochError(
                    "arrangement %r: epoch %d is compacted (floor %d)"
                    % (self.name, epoch, self.compacted_through)
                )
            epoch = self.compacted_through
        acc: Dict[Any, int] = dict(self.base.get(key, ()))
        for log_epoch, log in self.logs.items():
            if log_epoch <= epoch:
                for record, delta in log.get(key, {}).items():
                    acc[record] = acc.get(record, 0) + delta
        return [record for record, total in acc.items() if total > 0]

    def entries(self) -> int:
        """Total stored (key, record) entries (base plus live logs) —
        the quantity the O(state) memory tests pin."""
        count = sum(len(slot) for slot in self.base.values())
        for log in self.logs.values():
            count += sum(len(deltas) for deltas in log.values())
        return count

    def __repr__(self) -> str:
        return "SharedArrangement(%r, published=%d, floor=%d, entries=%d)" % (
            self.name,
            self.published,
            self.compacted_through,
            self.entries(),
        )


class ArrangeVertex(Vertex):
    """The maintaining operator of one :class:`SharedArrangement`.

    Consumes a diff stream ``(record, multiplicity)`` (single partition,
    like the app-level readers it replaces), buffers each epoch, and at
    the epoch's notification consolidates, applies to the arrangement,
    compacts, and fires the runtime's publish hook
    (``_arrangement_published``) so driver-side readers learn the new
    frontier.  The vertex emits no records — its output port exists as a
    *structural* edge to the serving stage: the could-result-in summary
    through that edge guarantees the server's ``on_notify(e)`` runs only
    after this vertex applied epoch ``e``, even when no records flow.

    Pinned to the coordinator (the arrangement is shared driver-side
    state; pool children must not hold divergent copies).  ``readers``
    is wired post-build by the :class:`~repro.serve.session.
    SessionManager`; compaction never folds an epoch a reader still has
    pending queries for.
    """

    coordinator_only = True
    _CONFIG_ATTRS = ("key", "readers")

    def __init__(self, name: str, key: Callable[[Any], Any], retain: int = 4):
        super().__init__()
        self.key = key
        self.arr = SharedArrangement(name, retain=retain)
        self.pending: Dict[Timestamp, List[Diff]] = {}
        #: Reader vertices whose pending epochs pin the compaction floor
        #: (transient; re-wired by the session manager after build).
        self.readers: List[Vertex] = []

    def on_recv(self, input_port: int, records: List[Diff], timestamp: Timestamp) -> None:
        pending = self.pending.get(timestamp)
        if pending is None:
            pending = self.pending[timestamp] = []
            self.notify_at(timestamp)
        pending.extend(records)

    def _reader_floor(self) -> int:
        """The newest epoch safe to fold given outstanding fresh reads:
        one below the earliest epoch any reader still has buffered."""
        floor = self.arr.published
        for reader in self.readers:
            for timestamp in getattr(reader, "pending", ()):
                if timestamp.epoch - 1 < floor:
                    floor = timestamp.epoch - 1
        return floor

    def on_notify(self, timestamp: Timestamp) -> None:
        epoch = timestamp.epoch
        diffs = consolidate_diffs(self.pending.pop(timestamp, []))
        key = self.key
        keyed: Dict[Any, Dict[Any, int]] = {}
        for record, multiplicity in diffs:
            keyed.setdefault(key(record), {})[record] = multiplicity
        self.arr.apply(epoch, keyed)
        self.arr.compact(self._reader_floor())
        harness = self._harness
        computation = getattr(harness, "cluster", harness)
        computation._arrangement_published(self.arr.name, epoch)


class Arrangement:
    """Driver-side handle for one arranged stage (returned by
    ``arrange_by``).

    Holds the stage, a completion probe on the arrange output, and —
    after ``build()`` — resolves the live maintaining vertex.  The
    handle never caches the :class:`SharedArrangement` object itself:
    ``restore()`` replaces vertex attributes wholesale, so state is
    always reached through the vertex (``handle.state``).
    """

    def __init__(self, computation, stage, name: str, probe) -> None:
        self.computation = computation
        self.stage = stage
        self.name = name
        #: Progress probe on the arrange output: ``probe.done(e)`` means
        #: epoch ``e``'s diffs are applied cluster-wide (conservative).
        self.probe = probe

    def vertex(self) -> ArrangeVertex:
        vertices = self.computation.vertices
        vertex = vertices.get((self.stage, 0)) or vertices.get(self.stage)
        if vertex is None:
            raise RuntimeError(
                "arrangement %r: call build() before reading" % (self.name,)
            )
        return vertex

    @property
    def state(self) -> SharedArrangement:
        return self.vertex().arr

    def completed_epoch(self, default: Optional[int] = None) -> int:
        """Newest epoch this arrangement has fully applied, judged from
        the progress frontier (conservative, never early)."""
        first = self.probe.first_incomplete()
        if first is None:
            published = self.state.published
            return published if default is None else max(published, default)
        return first - 1

    def __repr__(self) -> str:
        return "Arrangement(%r)" % (self.name,)


class ArrangementView:
    """A read handle snapshotting one arrangement at one epoch."""

    __slots__ = ("arrangement", "epoch", "read_at")

    def __init__(self, arrangement: SharedArrangement, epoch: int):
        self.arrangement = arrangement
        #: The requested snapshot epoch.
        self.epoch = epoch
        #: The epoch actually answered from (>= epoch after compaction).
        self.read_at = arrangement.read_epoch(epoch)

    def get(self, key: Any) -> List[Any]:
        return self.arrangement.lookup(key, self.epoch, clamp=True)

    def __repr__(self) -> str:
        return "ArrangementView(%r @ %d)" % (self.arrangement.name, self.read_at)


def snapshot_views(
    arrangements: List[Arrangement], epoch: int
) -> Tuple[Dict[str, ArrangementView], int]:
    """Views of every arrangement at ``epoch``, plus the effective state
    epoch (the weakest ``read_at`` — everything up to it is reflected)."""
    views: Dict[str, ArrangementView] = {}
    state_epoch: Optional[int] = None
    for handle in arrangements:
        view = ArrangementView(handle.state, epoch)
        views[handle.name] = view
        if state_epoch is None or view.read_at < state_epoch:
            state_epoch = view.read_at
    return views, epoch if state_epoch is None else state_epoch
