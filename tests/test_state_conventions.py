"""Audit: every library vertex obeys the picklable-state conventions.

The durable journal (section 3.4) and the multiprocessing execution
backend both pickle ``Vertex.checkpoint()`` snapshots, so every vertex
class must keep constructor-supplied callables out of its snapshot by
listing them in ``_CONFIG_ATTRS`` (see :mod:`repro.core.vertex`).

The test constructs each vertex with *locally defined lambdas* for all
function-valued configuration.  Local lambdas do not pickle, so a class
that forgets to exclude one fails ``pickle.dumps`` here — the audit
needs no per-class knowledge of what the config attributes are called.
Construction is registry-driven and the registry is checked for
completeness against the class tree, so a new vertex class cannot
silently dodge the audit.
"""

import pickle

import pytest

import repro.algorithms  # noqa: F401  (populate the subclass tree)
import repro.lib  # noqa: F401
from repro.algorithms.connectivity import MinLabelVertex
from repro.algorithms.hashtag_components import QueryVertex, _ImmediateSink
from repro.algorithms.logistic import TrainVertex
from repro.algorithms.pagerank import PageRankVertex, _EdgeBlockVertex, _SfcRankVertex
from repro.algorithms.shortest_paths import MultiSourceBfsVertex
from repro.core.vertex import ForwardingVertex, Vertex
from repro.lib.allreduce import (
    _GatherVertex,
    _ReduceChunkVertex,
    _ScatterVertex,
    _TreeBroadcastVertex,
    _TreeDeliverVertex,
    _TreeLevelVertex,
)
from repro.lib.bloom import AsyncDistinctVertex, AsyncJoinVertex, MonotonicAggregateVertex
from repro.lib.incremental import (
    IncrementalCountVertex,
    IncrementalDistinctVertex,
    IncrementalJoinVertex,
    IncrementalReduceVertex,
    UnionFindVertex,
    WindowedConnectedComponentsVertex,
    _EpochDiffVertex,
)
from repro.lib.operators import (
    AggregateByVertex,
    BinaryBufferingVertex,
    ConcatVertex,
    CountByVertex,
    DistinctVertex,
    GroupByVertex,
    InspectVertex,
    JoinVertex,
    ProbeVertex,
    SelectManyVertex,
    SelectVertex,
    SubscribeVertex,
    UnaryBufferingVertex,
    WhereVertex,
)
from repro.lib.pregel import PregelVertex, _AggregatorVertex
from repro.opt.fused import FusedVertex
from repro.serve.arrangement import ArrangeVertex
from repro.serve.session import ServeVertex


def _make_fused():
    return FusedVertex(
        [SelectVertex(lambda x: x), WhereVertex(lambda x: True)],
        ("select", "where"),
    )


#: class -> zero-argument constructor using local (unpicklable) lambdas
#: for every function-valued configuration parameter.
CONSTRUCTORS = {
    SelectVertex: lambda: SelectVertex(lambda x: x),
    WhereVertex: lambda: WhereVertex(lambda x: True),
    SelectManyVertex: lambda: SelectManyVertex(lambda x: [x]),
    ConcatVertex: ConcatVertex,
    DistinctVertex: DistinctVertex,
    UnaryBufferingVertex: lambda: UnaryBufferingVertex(lambda rs: rs),
    BinaryBufferingVertex: lambda: BinaryBufferingVertex(lambda ls, rs: ls),
    GroupByVertex: lambda: GroupByVertex(lambda r: r, lambda k, vs: vs),
    CountByVertex: lambda: CountByVertex(lambda r: r),
    AggregateByVertex: lambda: AggregateByVertex(
        lambda r: r, lambda r: r, lambda a, b: a
    ),
    JoinVertex: lambda: JoinVertex(lambda l: l, lambda r: r, lambda l, r: (l, r)),
    SubscribeVertex: lambda: SubscribeVertex(lambda t, rs: None),
    ProbeVertex: ProbeVertex,
    InspectVertex: lambda: InspectVertex(lambda t, rs: None),
    IncrementalDistinctVertex: IncrementalDistinctVertex,
    IncrementalCountVertex: lambda: IncrementalCountVertex(lambda r: r),
    IncrementalReduceVertex: lambda: IncrementalReduceVertex(
        lambda r: r, lambda k, vs: vs
    ),
    IncrementalJoinVertex: lambda: IncrementalJoinVertex(
        lambda l: l, lambda r: r, lambda l, r: (l, r)
    ),
    UnionFindVertex: UnionFindVertex,
    WindowedConnectedComponentsVertex: WindowedConnectedComponentsVertex,
    AsyncDistinctVertex: AsyncDistinctVertex,
    AsyncJoinVertex: lambda: AsyncJoinVertex(
        lambda l: l, lambda r: r, lambda l, r: (l, r)
    ),
    MonotonicAggregateVertex: lambda: MonotonicAggregateVertex(
        lambda r: r, lambda r: r, lambda new, cur: new < cur
    ),
    _ScatterVertex: _ScatterVertex,
    _ReduceChunkVertex: lambda: _ReduceChunkVertex(lambda a, b: a),
    _GatherVertex: _GatherVertex,
    _TreeLevelVertex: lambda: _TreeLevelVertex(0, lambda a, b: a),
    _TreeBroadcastVertex: _TreeBroadcastVertex,
    _TreeDeliverVertex: _TreeDeliverVertex,
    PregelVertex: lambda: PregelVertex(
        lambda ctx: None, 3, lambda a, b: a, lambda a, b: a
    ),
    _AggregatorVertex: lambda: _AggregatorVertex(lambda a, b: a),
    ForwardingVertex: ForwardingVertex,
    MinLabelVertex: MinLabelVertex,
    QueryVertex: QueryVertex,
    _ImmediateSink: lambda: _ImmediateSink(lambda t, rs: None),
    TrainVertex: lambda: TrainVertex(2, 0.1, 3),
    PageRankVertex: lambda: PageRankVertex(2),
    _EdgeBlockVertex: _EdgeBlockVertex,
    _SfcRankVertex: lambda: _SfcRankVertex(2),
    MultiSourceBfsVertex: MultiSourceBfsVertex,
    FusedVertex: _make_fused,
    # The serving layer: the arrangement key and the reader list
    # (vertex references) are config; the arrangement itself is state
    # and rides checkpoints.  The serve vertex's only config is its
    # driver-side manager.
    ArrangeVertex: lambda: ArrangeVertex("arr", lambda r: r),
    ServeVertex: lambda: ServeVertex(None),
}

#: Abstract bases never instantiated by the library builders.
ABSTRACT = {Vertex, _EpochDiffVertex}


def _all_vertex_classes():
    found = set()
    frontier = [Vertex]
    while frontier:
        cls = frontier.pop()
        for sub in cls.__subclasses__():
            if sub not in found:
                found.add(sub)
                frontier.append(sub)
    # Only audit library code; test files define throwaway vertices.
    return {cls for cls in found if cls.__module__.startswith("repro.")}


def test_registry_covers_every_library_vertex():
    missing = _all_vertex_classes() - set(CONSTRUCTORS) - ABSTRACT
    assert not missing, (
        "vertex classes missing from the state-convention audit: %s"
        % sorted(cls.__name__ for cls in missing)
    )


@pytest.mark.parametrize(
    "cls", sorted(CONSTRUCTORS, key=lambda c: c.__name__), ids=lambda c: c.__name__
)
def test_checkpoint_is_picklable_and_round_trips(cls):
    vertex = CONSTRUCTORS[cls]()
    state = vertex.checkpoint()
    # The snapshot must survive the pickle boundary even though every
    # config function above is an unpicklable local lambda.
    pickle.loads(pickle.dumps(state))
    # And restore() must accept its own checkpoint.
    vertex.restore(state)
    again = vertex.checkpoint()
    pickle.loads(pickle.dumps(again))


@pytest.mark.parametrize(
    "cls", sorted(CONSTRUCTORS, key=lambda c: c.__name__), ids=lambda c: c.__name__
)
def test_config_attrs_really_name_attributes(cls):
    vertex = CONSTRUCTORS[cls]()
    for name in vertex._CONFIG_ATTRS:
        assert hasattr(vertex, name), (
            "%s._CONFIG_ATTRS names %r which the instance lacks"
            % (cls.__name__, name)
        )


def test_driver_side_vertices_are_pinned_to_coordinator():
    # Vertices whose callbacks touch driver-side objects (callbacks,
    # probes, subscriptions) must not run in pool children.
    for cls in (SubscribeVertex, ProbeVertex, InspectVertex, _ImmediateSink):
        assert cls.coordinator_only, cls.__name__
