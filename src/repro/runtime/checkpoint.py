"""Checkpointing, failure injection and recovery for the simulated
cluster (paper section 3.4).

Naiad's fault-tolerance cycle is: pause worker threads, flush message
queues and progress-protocol buffers so every process agrees on the
occurrence counts, ask each stateful vertex for a checkpoint, log the
state durably, then resume.  Recovery after a process failure rolls
*every* process back to the last durable checkpoint, reassigns the
failed process's vertices to the remaining machines (or to a restarted
process), rebuilds progress-tracking state on all peers, and replays
the logged inputs.

:class:`RecoveryManager` implements that cycle on the discrete-event
cluster of :mod:`repro.runtime.cluster`:

**Input journal.**  Every epoch the external producer supplies (and
every input close) is journaled before release.  The journal is the
replay log: after a rollback, re-executing the journal suffix past the
checkpoint regenerates exactly the lost computation, because vertex
execution is deterministic for a fixed graph and input.  In ``logging``
mode the runtime additionally pays the continual cost of journaling
every cross-process message batch (charged in ``_Worker._step``); the
manager accounts those bytes so recovery pays a log-read cost instead
of recomputing from the most recent full checkpoint only.

**Checkpoint barrier.**  A trigger (every ``checkpoint_every`` released
epochs, or an explicit :meth:`ClusterComputation.checkpoint` call)
pauses the release of further input and waits for the cluster to reach
quiescence: no message in flight on the network, no worker with queued
messages or an uncommitted callback.  Reaching quiescence is detected
by a probe event that re-arms itself at the simulator's next event time
— the virtual-time analogue of the paper's "wait for all workers to
pause".  At the barrier the withheld updates in every protocol
accumulator are flushed synchronously (legal precisely because nothing
is in flight), after which all process views agree and the global state
is a consistent cut: vertices, pending notifications and one shared set
of occurrence counts.

**Failure.**  :meth:`ClusterComputation.kill_process` injects a failure
at a virtual time.  The network tears down in-flight traffic, all
workers are discarded (global rollback — survivors' state past the
checkpoint is invalidated by the lost process's messages), vertices are
restored from the latest durable snapshot, progress views are rebuilt
from the checkpointed occurrence counts, and the journal suffix
replays.  Outputs already released to external subscribers are
remembered and suppressed during replay, so a recovered run releases
each (sink, timestamp) batch exactly once.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, List, Optional, Set, Tuple

from ..obs.trace import TraceEvent

#: Recovery placement policies.
RECOVERY_POLICIES = ("restart", "reassign")


class RecoveryManager:
    """Orchestrates checkpoints, failure handling and replay.

    One manager exists per :class:`ClusterComputation`; it owns the
    input journal, the latest durable snapshot, the exactly-once output
    ledger and all failure bookkeeping.  The cluster delegates its
    public ``checkpoint()``/``restore()``/``kill_process()`` API here.
    """

    def __init__(self, cluster) -> None:
        self.cluster = cluster
        #: Ordered input journal: ("epoch", stage, epoch, records) and
        #: ("close", stage, next_epoch) entries, in arrival order.
        self.journal: List[Tuple] = []
        #: Journal prefix already released into the dataflow.
        self.released = 0
        #: Data epochs released so far (the checkpoint trigger counter).
        self.epochs_released = 0
        #: True while a checkpoint barrier is draining the cluster; new
        #: journal entries are deferred until the snapshot completes.
        self.paused = False
        #: Bumped by every failure/rollback; cancels stale probe events.
        self._generation = 0
        #: Latest durable checkpoint (None until one is taken).
        self.snapshot: Optional[Dict[str, Any]] = None
        #: Snapshot of the freshly built cluster; the rollback target
        #: when no checkpoint has been taken yet (mode "none" recovers
        #: by replaying the whole journal from here).
        self.initial: Optional[Dict[str, Any]] = None
        self.checkpoint_count = 0
        self.last_checkpoint_time: Optional[float] = None
        #: Continual-logging accounting ("logging" mode).
        self.logged_bytes = 0
        self.logged_batches = 0
        self._logged_at_snapshot = 0
        #: Processes currently without live workers ("reassign" policy).
        self.dead_processes: Set[int] = set()
        #: One record per injected failure (see :meth:`fail_process`).
        self.failures: List[Dict[str, Any]] = []
        #: (stage_index, worker, timestamp) batches already delivered to
        #: external subscribers; replay skips them (exactly-once).
        self._released_outputs: Set[Tuple[int, int, Any]] = set()
        #: Virtual time the active barrier started draining (None when
        #: no barrier is active); the drain span lands in the trace.
        self._barrier_begin: Optional[float] = None

    # ------------------------------------------------------------------
    # Input journal and release pump.
    # ------------------------------------------------------------------

    def journal_epoch(self, stage, records: List[Any], epoch: int) -> None:
        self.journal.append(("epoch", stage, epoch, records))
        self.pump()

    def journal_close(self, stage, next_epoch: int) -> None:
        self.journal.append(("close", stage, next_epoch))
        self.pump()

    def pump(self) -> None:
        """Release journal entries into the dataflow until paused.

        Doubles as the replay loop: after a rollback ``released`` points
        back into the journal and pumping re-executes the suffix.
        """
        cluster = self.cluster
        ft = cluster.fault_tolerance
        while not self.paused and self.released < len(self.journal):
            entry = self.journal[self.released]
            self.released += 1
            if entry[0] == "epoch":
                _, stage, epoch, records = entry
                cluster._release_epoch(stage, records, epoch)
                self.epochs_released += 1
                if (
                    ft.mode in ("checkpoint", "logging")
                    and ft.checkpoint_every > 0
                    and self.epochs_released % ft.checkpoint_every == 0
                ):
                    if cluster.async_ckpt is not None:
                        # Asynchronous mode: start a marker cycle; input
                        # release never pauses.
                        cluster.async_ckpt.request_cycle()
                    else:
                        self.begin_checkpoint()
            else:
                _, stage, next_epoch = entry
                cluster._release_close(stage, next_epoch)

    # ------------------------------------------------------------------
    # The checkpoint barrier.
    # ------------------------------------------------------------------

    def begin_checkpoint(self) -> None:
        """Pause input release and start draining toward quiescence."""
        if self.paused:
            return
        self.paused = True
        self._barrier_begin = self.cluster.sim.now
        self._schedule_probe()

    def _schedule_probe(self, at: Optional[float] = None) -> None:
        sim = self.cluster.sim
        generation = self._generation
        time = sim.now if at is None else max(at, sim.now)
        sim.schedule_at(time, lambda: self._probe(generation))

    def _probe(self, generation: int) -> None:
        if generation != self._generation or not self.paused:
            return  # a failure rolled the cluster back; cycle abandoned
        if not self.quiescent():
            self._rearm_probe()
            return
        # Nothing in flight: flush the withheld protocol updates so all
        # views agree, then re-arm if the flush unblocked more work.
        self.cluster._flush_protocol_buffers()
        for worker in self.cluster.workers:
            worker.activate()
        if not self.quiescent():
            self._rearm_probe()
            return
        self.complete_checkpoint()

    def _rearm_probe(self) -> None:
        next_time = self.cluster.sim.next_event_time
        if next_time is None:
            raise RuntimeError(
                "checkpoint barrier cannot reach quiescence; cluster state:\n"
                + str(self.cluster.debug_state())
            )
        self._schedule_probe(at=next_time)

    def quiescent(self) -> bool:
        """No message in flight, no worker with undelivered work.

        Detector heartbeats are excluded: they flow as long as the
        computation does, and a barrier that waited for them would
        never fire."""
        cluster = self.cluster
        if cluster.network.data_in_flight:
            return False
        for worker in cluster.workers:
            if worker.queue or worker._scheduled or worker._commit_pending:
                return False
        return True

    def complete_checkpoint(self) -> Dict[str, Any]:
        """Snapshot the quiescent cluster, charge the write, resume."""
        cluster = self.cluster
        now = cluster.sim.now
        self.snapshot = self.take_snapshot()
        self.checkpoint_count += 1
        self.last_checkpoint_time = now
        self._logged_at_snapshot = self.logged_bytes
        self._prune_released_outputs(self.snapshot)
        duration = self._write_duration()
        if duration > 0:
            resume = now + duration
            for worker in cluster.workers:
                worker.busy_until = max(worker.busy_until, resume)
            # The computation is not done until the checkpoint is
            # durable; advance the clock to the write's completion even
            # if no further work exists.
            cluster.sim.schedule_at(resume, lambda: None)
        drain = now - self._barrier_begin if self._barrier_begin is not None else 0.0
        self._barrier_begin = None
        trace = cluster._trace
        if trace is not None:
            trace.emit(
                TraceEvent(
                    "checkpoint",
                    now,
                    duration,
                    perf_counter(),
                    -1,
                    -1,
                    "",
                    (),
                    (self.checkpoint_count, self.released, drain, duration),
                )
            )
        self.paused = False
        self.pump()
        return self.snapshot

    def _write_duration(self) -> float:
        """Checkpoint write time: processes write their workers' state
        to local disk in parallel, so the slowest (most loaded) process
        gates the pause."""
        ft = self.cluster.fault_tolerance
        hosted: Dict[int, int] = {}
        for worker in self.cluster.workers:
            hosted[worker.process] = hosted.get(worker.process, 0) + 1
        most = max(hosted.values()) if hosted else 0
        return ft.state_bytes_per_worker * most / ft.disk_bandwidth

    def take_snapshot(self) -> Dict[str, Any]:
        """Capture the consistent cut.  Caller ensures quiescence."""
        cluster = self.cluster
        # Agreement is asserted over the *live* membership: processes
        # that left via remove_process() stop receiving broadcasts and
        # their views go stale by design; mirror views alias process
        # 0's object and are deduplicated.
        views = cluster._unique_views(live_only=True)
        occurrence = views[0].snapshot()
        for view in views[1:]:
            if view.state.occurrence != occurrence:
                raise RuntimeError(
                    "progress views disagree at a checkpoint barrier; "
                    "the protocol flush is incomplete:\n"
                    + str(cluster.debug_state())
                )
        return {
            "time": cluster.sim.now,
            # Under the mp backend this pulls pool-resident state over
            # the pipes — the barrier has already drained the pool.
            "vertices": cluster.checkpoint_vertex_states(),
            "pending": {
                w.index: dict(w.pending_notifications) for w in cluster.workers
            },
            "cleanups": {
                w.index: dict(w.pending_cleanups) for w in cluster.workers
            },
            "occurrence": occurrence,
            "journal_released": self.released,
            "epochs_released": self.epochs_released,
            "epochs": [(h.next_epoch, h.closed) for h in cluster.inputs],
            "worker_process": list(cluster._worker_process),
        }

    def _prune_released_outputs(self, snapshot: Dict[str, Any]) -> None:
        """Drop exactly-once ledger entries no replay can ever reach.

        A restore re-delivers the inputs journaled at or after the
        snapshot plus whatever the snapshot itself still holds (an
        asynchronous cut carries in-flight channel messages and pending
        notifications below the input frontier).  Timestamps can only
        move forward in epoch, so sink timestamps below *every* positive
        occurrence entry in the snapshot are final and their dedup
        entries can be freed.  (At a quiescent barrier only the input
        frontier is outstanding, so this reduces to the input floor.)
        """
        floors = [
            pointstamp.timestamp.epoch
            for pointstamp, count in snapshot["occurrence"].items()
            if count > 0
        ]
        floor = min(floors) if floors else None
        if floor is None:
            # Every input closed and fully released: nothing replays.
            self._released_outputs.clear()
            return
        self._released_outputs = {
            key for key in self._released_outputs if key[2].epoch >= floor
        }

    # ------------------------------------------------------------------
    # Exactly-once output release.
    # ------------------------------------------------------------------

    def note_release(self, stage_index: int, worker: int, timestamp) -> bool:
        """Record an external output release; False if already released
        (a replayed duplicate that must be suppressed)."""
        key = (stage_index, worker, timestamp)
        if key in self._released_outputs:
            return False
        self._released_outputs.add(key)
        return True

    def note_logged(self, nbytes: int) -> None:
        """Account one message batch written to the continual log."""
        self.logged_bytes += nbytes
        self.logged_batches += 1

    # ------------------------------------------------------------------
    # Failure and rollback.
    # ------------------------------------------------------------------

    def _restore_set_empty(self, process: int, snapshot: Dict[str, Any]) -> bool:
        """True when killing ``process`` loses nothing: its workers are
        idle with no queued/claimed/in-flight work addressed to them and
        every hosted vertex state equals the rollback snapshot's.  Then
        a restart needs no rollback at all (satellite: skip the barrier
        when the restore set is empty)."""
        cluster = self.cluster
        if cluster.network.data_in_flight:
            return False
        if cluster.nodes[process].buffer:
            return False
        if any(w.dead for w in cluster.workers if w.process == process):
            # A silent crash froze the hosted workers where they stood:
            # their queues and claims are lost, not idle — never skip.
            return False
        dead = [
            w for w in cluster.workers if w.process == process and not w.dead
        ]
        pool = cluster.pool
        for worker in dead:
            if (
                worker.queue
                or worker.pending_notifications
                or worker.pending_cleanups
                or worker._commit_pending
            ):
                return False
            if pool is not None and pool.claim_has_work(worker.index):
                return False
        ac = cluster.async_ckpt
        dead_indices = {w.index for w in dead}
        if ac is not None:
            for entry in ac.inflight.values():
                if entry[1] in dead_indices:
                    return False
        from ..core.graph import StageKind

        stages = [
            stage
            for stage in cluster.graph.stages
            if stage.kind is not StageKind.INPUT
        ]
        pulled: Dict[Tuple[int, int], Any] = {}
        if pool is not None:
            for index in dead_indices:
                pulled.update(
                    pool.pull_worker_states(index, [s.index for s in stages])
                )
        try:
            for stage in stages:
                for index in dead_indices:
                    key = (stage.index, index)
                    state = pulled.get(key)
                    if state is None:
                        state = cluster.vertices[(stage, index)].checkpoint()
                    if state != snapshot["vertices"].get(key):
                        return False
        except Exception:
            return False  # states not comparable -> be conservative
        return True

    def fail_process(
        self,
        process: int,
        policy: Optional[str] = None,
        restart_delay: Optional[float] = None,
    ) -> None:
        """Kill a process now: lose its workers, recover.

        Recovery escalates through three tiers: **skip** (the restore
        set is empty — nothing was lost, the process just restarts in
        place), **partial** (async mode: restore only the lost workers
        from the durable cut and replay their journal suffix while
        survivors keep running behind a frontier fence), **global** (the
        paper's whole-cluster rollback).  Placement of the dead
        process's workers follows ``FaultTolerance.recovery``:
        ``"restart"`` brings the process back after ``restart_delay``
        (same worker placement); ``"reassign"`` spreads its workers
        round-robin over the survivors (the dead process stays dead, as
        under Naiad's vertex-reassignment recovery).

        ``policy`` / ``restart_delay`` override the configured placement
        and delay for this one failure (the supervisor's quarantine and
        exponential-backoff paths); both default to the
        :class:`FaultTolerance` settings.

        The failed incarnation is *fenced* first: its generation number
        advances and its outstanding progress copies settle, so any
        traffic it still has in flight — or keeps emitting, if it was
        falsely suspected — is provably stale and discarded.  The
        oracle path (:meth:`ClusterComputation.kill_process`) and the
        supervisor's detection path share this fence, which is what
        keeps their outputs bit-identical.
        """
        cluster = self.cluster
        if process in self.dead_processes:
            return  # already dead; nothing new to lose
        if process in cluster._removed_processes:
            return  # already left the cluster; it hosts nothing
        if policy is not None and policy not in RECOVERY_POLICIES:
            raise ValueError(
                "fail_process() policy must be one of %r (got %r)"
                % (RECOVERY_POLICIES, policy)
            )
        if restart_delay is not None and restart_delay < 0:
            raise ValueError(
                "fail_process() restart_delay must be >= 0 (got %r)"
                % (restart_delay,)
            )
        cluster._fence_process(process)
        now = cluster.sim.now
        ft = cluster.fault_tolerance
        snapshot = self.snapshot or self.initial
        if policy is None:
            policy = ft.recovery
        delay = ft.restart_delay if restart_delay is None else restart_delay
        survivors = [
            p
            for p in cluster.live_processes
            if p != process and p not in self.dead_processes
        ]
        trace = cluster._trace
        if policy == "restart" and self._restore_set_empty(process, snapshot):
            # Nothing to restore: the process restarts in place with its
            # state intact; no rollback barrier, no replay, survivors
            # untouched.  (Only sound under "restart" — "reassign" must
            # still migrate the workers off the dead process.)
            ready = now + delay
            for worker in cluster.workers:
                if worker.process == process:
                    worker.busy_until = max(worker.busy_until, ready)
            if trace is not None:
                trace.emit(
                    TraceEvent(
                        "failure",
                        now,
                        ready - now,
                        perf_counter(),
                        -1,
                        process,
                        "",
                        (),
                        (policy, 0, "skip"),
                    )
                )
            self.failures.append(
                {
                    "at": now,
                    "process": process,
                    "policy": policy,
                    "mode": "skip",
                    "ready": ready,
                    "restored_from": snapshot["time"],
                    "replayed_entries": 0,
                }
            )
            self._notify_sessions()
            return
        ac = cluster.async_ckpt
        if ac is not None and survivors and not ac.replay_dedup:
            # Partial rollback: restore only the lost process's workers.
            # Under "reassign" the same rollback doubles as a migration —
            # the lost workers are rehomed round-robin across the
            # survivors and only *their* state is restored, with replay
            # dedup protecting the survivors from duplicate deliveries.
            # (Bail to global recovery while a previous partial replay's
            # dedup ledgers are still draining — overlapping replays
            # would not be distinguishable.)
            ready = now + delay
            if ft.mode in ("checkpoint", "logging") and self.snapshot is not None:
                hosted = sum(
                    1 for owner in cluster._worker_process if owner == process
                )
                ready += ft.state_bytes_per_worker * hosted / ft.disk_bandwidth
            if ft.mode == "logging":
                ready += (
                    self.logged_bytes - self._logged_at_snapshot
                ) / ft.disk_bandwidth
            self._generation += 1  # cancel any pending barrier probe
            self.paused = False
            self._barrier_begin = None
            placement = None
            if policy == "reassign":
                self.dead_processes.add(process)
                moving = [
                    index
                    for index, owner in enumerate(cluster._worker_process)
                    if owner == process
                ]
                placement = {
                    index: survivors[cursor % len(survivors)]
                    for cursor, index in enumerate(moving)
                }
            injected = ac.partial_rollback(
                process, snapshot, ready, placement=placement,
                flush_node=process,
            )
            if trace is not None:
                trace.emit(
                    TraceEvent(
                        "failure",
                        now,
                        ready - now,
                        perf_counter(),
                        -1,
                        process,
                        "",
                        (),
                        (policy, injected, "partial"),
                    )
                )
            self.failures.append(
                {
                    "at": now,
                    "process": process,
                    "policy": policy,
                    "mode": "partial",
                    "ready": ready,
                    "restored_from": snapshot["time"],
                    "replayed_entries": injected,
                }
            )
            self.pump()
            self._notify_sessions()
            return
        if policy == "reassign" and survivors:
            self.dead_processes.add(process)
            mapping = list(cluster._worker_process)
            cursor = 0
            for index in range(cluster.total_workers):
                if mapping[index] == process:
                    mapping[index] = survivors[cursor % len(survivors)]
                    cursor += 1
            cluster._worker_process = mapping
        else:
            policy = "restart"
        ready = now + delay
        if ft.mode in ("checkpoint", "logging") and self.snapshot is not None:
            hosted: Dict[int, int] = {}
            for owner in cluster._worker_process:
                hosted[owner] = hosted.get(owner, 0) + 1
            most = max(hosted.values()) if hosted else 0
            ready += ft.state_bytes_per_worker * most / ft.disk_bandwidth
        if ft.mode == "logging":
            ready += (self.logged_bytes - self._logged_at_snapshot) / ft.disk_bandwidth
        if trace is not None:
            trace.emit(
                TraceEvent(
                    "failure",
                    now,
                    ready - now,
                    perf_counter(),
                    -1,
                    process,
                    "",
                    (),
                    (
                        policy,
                        len(self.journal) - snapshot["journal_released"],
                        "global",
                    ),
                )
            )
        self._restore_and_replay(snapshot, ready)
        self.failures.append(
            {
                "at": now,
                "process": process,
                "policy": policy,
                "mode": "global",
                "ready": ready,
                "restored_from": snapshot["time"],
                "replayed_entries": len(self.journal) - snapshot["journal_released"],
            }
        )
        self.pump()
        self._notify_sessions()

    def _notify_sessions(self) -> None:
        """Tell the serving layer recovery ran: parked queries recheck
        immediately instead of waiting for the next frontier advance."""
        for manager in self.cluster.session_managers:
            manager.on_recovery()

    def rollback_to(self, snapshot: Dict[str, Any]) -> None:
        """Public restore(): roll back to ``snapshot`` and replay the
        journal suffix (no failure, no recovery latency)."""
        self._restore_and_replay(snapshot, self.cluster.sim.now)
        self.pump()

    def _restore_and_replay(self, snapshot: Dict[str, Any], ready: float) -> None:
        """The global rollback: every process restarts from the cut."""
        cluster = self.cluster
        self._generation += 1  # cancel any pending checkpoint probe
        self.paused = False
        self._barrier_begin = None
        trace = cluster._trace
        if trace is not None:
            trace.emit(
                TraceEvent(
                    "restore",
                    cluster.sim.now,
                    max(0.0, ready - cluster.sim.now),
                    perf_counter(),
                    -1,
                    -1,
                    "",
                    (),
                    (snapshot["time"], snapshot["journal_released"]),
                )
            )
        cluster.network.teardown_inflight()
        if cluster._progress_fence is not None:
            # The torn-down copies' fence wrappers will never run, so
            # their entries would leak — and a later settle would
            # re-apply pre-rollback updates to the restored views.
            cluster._progress_fence.clear()
        cluster._rebuild_workers(busy_until=ready)
        cluster._restore_snapshot(snapshot)
        self.released = snapshot["journal_released"]
        self.epochs_released = snapshot["epochs_released"]

    # ------------------------------------------------------------------
    # Introspection (debug_state / benchmarks).
    # ------------------------------------------------------------------

    def describe(self) -> List[str]:
        lines = [
            "  checkpoints=%d last_at=%s journal=%d entries (%d released)"
            % (
                self.checkpoint_count,
                "%.6f" % self.last_checkpoint_time
                if self.last_checkpoint_time is not None
                else "never",
                len(self.journal),
                self.released,
            )
        ]
        if self.logged_batches:
            lines.append(
                "  message log: %d batches, %d bytes"
                % (self.logged_batches, self.logged_bytes)
            )
        if self.dead_processes:
            lines.append(
                "  dead processes: %s" % sorted(self.dead_processes)
            )
        for failure in self.failures:
            lines.append(
                "  failure: process %d at t=%.6f policy=%s restored_from=t=%.6f "
                "replayed=%d ready=t=%.6f"
                % (
                    failure["process"],
                    failure["at"],
                    failure["policy"],
                    failure["restored_from"],
                    failure["replayed_entries"],
                    failure["ready"],
                )
            )
        return lines
