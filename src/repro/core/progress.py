"""Frontier-based progress tracking (paper section 2.3).

Every unprocessed event — an undelivered message or an outstanding
notification request — occupies a :class:`Pointstamp`: a timestamp plus a
location (connector for messages, stage for notifications).  The
:class:`ProgressState` maintains, per active pointstamp, an *occurrence
count* (outstanding events at that pointstamp) and a *precursor count*
(active pointstamps that could-result-in it).  A pointstamp with zero
precursors is in the *frontier*; notifications in the frontier may be
delivered safely.

Occurrence counts change according to the four rules of section 2.3:

==========================  ==========================
Operation                   Update
==========================  ==========================
``v.send_by(e, m, t)``      ``OC[(t, e)] += 1``
``v.on_recv(e, m, t)``      ``OC[(t, e)] -= 1``
``v.notify_at(t)``          ``OC[(t, v)] += 1``
``v.on_notify(t)``          ``OC[(t, v)] -= 1``
==========================  ==========================

The same class doubles as a worker's *local view* of global progress in
the distributed protocol (section 3.3), where the updates arrive as
broadcast ``(pointstamp, delta)`` pairs.  Because broadcasts from
different workers may interleave, a local occurrence count can transiently
go negative; any pointstamp with a non-zero count is treated as active
(and hence blocking), which preserves the protocol's safety property.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, NamedTuple, Optional, Tuple

from .pathsummary import Antichain
from .timestamp import Timestamp


class Pointstamp(NamedTuple):
    """A timestamp paired with a graph location (stage or connector)."""

    timestamp: Timestamp
    location: Hashable

    def __repr__(self) -> str:
        return "Pointstamp(%r @ %r)" % (self.timestamp, self.location)


class ProgressState:
    """Occurrence/precursor counting over a could-result-in table.

    Parameters
    ----------
    summaries:
        ``{(l1, l2): Antichain}`` giving minimal path summaries between
        locations, as produced by
        :meth:`repro.core.graph.DataflowGraph.freeze`.
    """

    def __init__(
        self,
        summaries: Dict[Tuple[Hashable, Hashable], Antichain],
        cri_cache: Optional[Dict] = None,
    ):
        self._summaries = summaries
        self.occurrence: Dict[Pointstamp, int] = {}
        self.precursor: Dict[Pointstamp, int] = {}
        #: Incrementally maintained set of zero-precursor pointstamps.
        self._frontier: set = set()
        #: Memoised counter-part of could-result-in (epoch-invariant, so
        #: the cache stays bounded on long streams; shareable between
        #: the per-process views of a cluster since the graph is fixed).
        self._cri_cache: Dict = cri_cache if cri_cache is not None else {}
        #: Bumped only when frontier *membership* changes — occurrence
        #: count churn on existing pointstamps leaves it untouched, which
        #: is what makes the domination memo below effective.
        self.version = 0
        #: The hierarchical index (None when built from a plain dict,
        #: as unit tests do); enables per-scope version vectors.
        self._index = summaries if hasattr(summaries, "version_plan") else None
        #: Per-scope frontier version: bumped on any membership change
        #: in that scope.
        self._scope_exact: Dict[int, int] = {}
        #: Per-scope *projected* frontier version: bumped only when the
        #: set of boundary-projected frontier timestamps of that scope
        #: changes.  Other scopes see this scope only through truncating
        #: LCA summaries, so their verdicts depend on nothing finer —
        #: steady-state inner-iteration churn leaves it untouched.
        self._scope_proj: Dict[int, int] = {}
        self._proj_refs: Dict[int, Dict[Timestamp, int]] = {}
        #: pointstamp -> (version vector, dominated?) memo.
        self._dominated: Dict[Pointstamp, Tuple[int, Tuple, bool]] = {}
        #: Active pointstamps grouped by location, then by epoch.
        #: could-result-in is location-gated (no path summary between
        #: two locations means no pointstamp pair across them ever
        #: relates) and epoch-gated (``t1.epoch <= t2.epoch`` is
        #: necessary), so the O(active) scans in :meth:`_activate` /
        #: :meth:`_deactivate` can skip a whole group after two summary
        #: lookups and a whole epoch bucket after one integer compare,
        #: instead of paying a memo-key build per member.
        self._active_by_loc: Dict[Hashable, Dict[int, set]] = {}
        #: Frontier pointstamps grouped by location, for the same skip
        #: in :meth:`frontier_dominates`.
        self._frontier_by_loc: Dict[Hashable, set] = {}
        #: id(scope) -> (version-at-build, vector): version vectors are
        #: rebuilt only after a frontier membership change.
        self._vector_cache: Dict[int, Tuple[int, Tuple]] = {}

    # ------------------------------------------------------------------
    # The could-result-in relation on pointstamps.
    # ------------------------------------------------------------------

    def could_result_in(self, p1: Pointstamp, p2: Pointstamp) -> bool:
        """True iff an event at ``p1`` could lead to an event at ``p2``."""
        t1, t2 = p1.timestamp, p2.timestamp
        if t1.epoch > t2.epoch:
            return False
        key = (p1.location, p2.location, t1.counters, t2.counters)
        cached = self._cri_cache.get(key)
        if cached is None:
            antichain = self._summaries.get((p1.location, p2.location))
            cached = antichain is not None and any(
                s.dominates_counters(t1.counters, t2.counters) for s in antichain
            )
            self._cri_cache[key] = cached
        return cached

    def _cri_counters(self, l1, l2, c1: Tuple, c2: Tuple) -> bool:
        """could-result-in on raw (location, counters) pairs — the
        epoch condition is the caller's responsibility.  Lets the scan
        loops below resolve a whole epoch bucket of flat (no-counter)
        timestamps with one cached verdict instead of a memo-key build
        per member."""
        key = (l1, l2, c1, c2)
        cached = self._cri_cache.get(key)
        if cached is None:
            antichain = self._summaries.get((l1, l2))
            # A summary keeping more loop levels than the timestamp
            # carries cannot apply to it (such pairs never reach the
            # regular could_result_in path either).
            cached = antichain is not None and any(
                s.keep <= len(c1) and s.dominates_counters(c1, c2)
                for s in antichain
            )
            self._cri_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Occurrence-count updates.
    # ------------------------------------------------------------------

    def update(self, pointstamp: Pointstamp, delta: int) -> None:
        """Apply an occurrence-count delta, maintaining precursor counts."""
        if delta == 0:
            return
        old = self.occurrence.get(pointstamp, 0)
        new = old + delta
        if new == 0:
            del self.occurrence[pointstamp]
            self._deactivate(pointstamp)
        else:
            self.occurrence[pointstamp] = new
            if old == 0:
                self._activate(pointstamp)

    def update_many(self, updates: Iterable[Tuple[Pointstamp, int]]) -> None:
        for pointstamp, delta in updates:
            self.update(pointstamp, delta)

    def _activate(self, pointstamp: Pointstamp) -> None:
        count = 0
        precursor = self.precursor
        frontier = self._frontier
        cri = self.could_result_in
        summaries = self._summaries
        location = pointstamp.location
        epoch = pointstamp.timestamp.epoch
        flat_self = not pointstamp.timestamp.counters
        for loc, epochs in self._active_by_loc.items():
            forward = summaries.get((location, loc)) is not None
            backward = summaries.get((loc, location)) is not None
            if not forward and not backward:
                continue
            fwd_trivial = forward and self._cri_counters(location, loc, (), ())
            back_trivial = backward and self._cri_counters(loc, location, (), ())
            for other_epoch, group in epochs.items():
                scan_back = backward and other_epoch <= epoch
                scan_fwd = forward and epoch <= other_epoch
                if not scan_back and not scan_fwd:
                    continue
                for other in group:
                    if other == pointstamp:
                        continue
                    flat = flat_self and not other.timestamp.counters
                    if scan_back and (
                        back_trivial if flat else cri(other, pointstamp)
                    ):
                        count += 1
                    if scan_fwd and (
                        fwd_trivial if flat else cri(pointstamp, other)
                    ):
                        precursor[other] += 1
                        if other in frontier:
                            frontier.discard(other)
                            self._note_membership(other, False)
        self._active_by_loc.setdefault(location, {}).setdefault(
            epoch, set()
        ).add(pointstamp)
        precursor[pointstamp] = count
        if count == 0:
            frontier.add(pointstamp)
            self._note_membership(pointstamp, True)

    def _deactivate(self, pointstamp: Pointstamp) -> None:
        del self.precursor[pointstamp]
        location = pointstamp.location
        epoch = pointstamp.timestamp.epoch
        epochs = self._active_by_loc.get(location)
        if epochs is not None:
            group = epochs.get(epoch)
            if group is not None:
                group.discard(pointstamp)
                if not group:
                    del epochs[epoch]
                    if not epochs:
                        del self._active_by_loc[location]
        frontier = self._frontier
        if pointstamp in frontier:
            frontier.discard(pointstamp)
            self._note_membership(pointstamp, False)
        precursor = self.precursor
        cri = self.could_result_in
        summaries = self._summaries
        flat_self = not pointstamp.timestamp.counters
        for loc, other_epochs in self._active_by_loc.items():
            if summaries.get((location, loc)) is None:
                continue
            fwd_trivial = self._cri_counters(location, loc, (), ())
            for other_epoch, group in other_epochs.items():
                if other_epoch < epoch:
                    continue
                for other in group:
                    if other == pointstamp:
                        continue
                    flat = flat_self and not other.timestamp.counters
                    if fwd_trivial if flat else cri(pointstamp, other):
                        remaining = precursor[other] - 1
                        precursor[other] = remaining
                        if remaining == 0:
                            frontier.add(other)
                            self._note_membership(other, True)

    def _note_membership(self, pointstamp: Pointstamp, added: bool) -> None:
        """A pointstamp entered or left the frontier: bump the global
        version, its scope's exact version, and — when its boundary
        projection (dis)appeared — the scope's projected version."""
        self.version += 1
        if added:
            self._frontier_by_loc.setdefault(pointstamp.location, set()).add(
                pointstamp
            )
        else:
            group = self._frontier_by_loc.get(pointstamp.location)
            if group is not None:
                group.discard(pointstamp)
                if not group:
                    del self._frontier_by_loc[pointstamp.location]
        index = self._index
        if index is None:
            return
        try:
            scope = index.scope_of(pointstamp.location)
        except KeyError:
            return
        sid = id(scope)
        self._scope_exact[sid] = self._scope_exact.get(sid, 0) + 1
        if scope is None:
            return  # the root has no enclosing boundary to project to
        projected = index.project(pointstamp.timestamp, scope)
        refs = self._proj_refs.setdefault(sid, {})
        if added:
            previous = refs.get(projected, 0)
            refs[projected] = previous + 1
            if previous == 0:
                self._scope_proj[sid] = self._scope_proj.get(sid, 0) + 1
        else:
            remaining = refs.get(projected, 0) - 1
            if remaining <= 0:
                refs.pop(projected, None)
                self._scope_proj[sid] = self._scope_proj.get(sid, 0) + 1
            else:
                refs[projected] = remaining

    # ------------------------------------------------------------------
    # Frontier queries.
    # ------------------------------------------------------------------

    def is_active(self, pointstamp: Pointstamp) -> bool:
        return pointstamp in self.occurrence

    def in_frontier(self, pointstamp: Pointstamp) -> bool:
        """True iff the pointstamp is active with no active precursors."""
        return pointstamp in self._frontier

    def frontier(self) -> List[Pointstamp]:
        """The current frontier of active pointstamps."""
        return list(self._frontier)

    def frontier_dominates(self, pointstamp: Pointstamp) -> bool:
        """True iff some *other* frontier element could-result-in it.

        Because could-result-in is transitive and every active
        pointstamp is dominated by a frontier element, this is
        equivalent to "some other active pointstamp could-result-in
        it".  Memoised per frontier version: the hot paths (notification
        delivery tests, accumulator hold conditions) ask about the same
        pointstamps repeatedly between frontier movements.
        """
        # Fast path: no membership change at all since the cached
        # verdict — skip even the scope-vector lookup.  On a version
        # move, the vector comparison still salvages verdicts whose
        # relevant scopes did not move (inner-iteration churn
        # elsewhere), re-arming the fast path for the next call.
        cached = self._dominated.get(pointstamp)
        if cached is not None and cached[0] == self.version:
            return cached[2]
        vector = self.frontier_version_vector(pointstamp.location)
        if cached is not None and cached[1] == vector:
            self._dominated[pointstamp] = (self.version, vector, cached[2])
            return cached[2]
        cri = self.could_result_in
        summaries = self._summaries
        location = pointstamp.location
        result = False
        for loc, group in self._frontier_by_loc.items():
            if summaries.get((loc, location)) is None:
                continue
            if any(other != pointstamp and cri(other, pointstamp) for other in group):
                result = True
                break
        if len(self._dominated) > 100_000:
            self._dominated.clear()
        self._dominated[pointstamp] = (self.version, vector, result)
        return result

    def frontier_version_vector(self, location) -> Tuple:
        """The frontier versions a domination verdict at ``location``
        depends on: exact versions for its scope chain, boundary-
        projected versions for every other scope.  Equal vectors
        guarantee an unchanged verdict; inner-iteration churn in
        *other* scopes does not move the vector."""
        index = self._index
        if index is None:
            return (self.version,)
        try:
            scope = index.scope_of(location)
        except KeyError:
            return (self.version,)
        sid = id(scope)
        cached = self._vector_cache.get(sid)
        if cached is not None and cached[0] == self.version:
            return cached[1]
        exact = self._scope_exact
        projected = self._scope_proj
        vector = tuple(
            exact.get(id(s), 0) if is_exact else projected.get(id(s), 0)
            for s, is_exact in index.version_plan(scope)
        )
        self._vector_cache[sid] = (self.version, vector)
        return vector

    def active_pointstamps(self) -> List[Pointstamp]:
        return list(self.occurrence)

    def __len__(self) -> int:
        return len(self.occurrence)

    def __repr__(self) -> str:
        return "ProgressState(%d active, frontier=%r)" % (
            len(self.occurrence),
            self.frontier(),
        )
