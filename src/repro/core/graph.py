"""Logical dataflow graph structure (paper sections 2.1, 3.1 and 4.3).

A timely dataflow program is specified as a *logical graph* of stages
linked by typed connectors.  Stages are organised into possibly nested
loop contexts; edges enter a context through an ingress stage, leave it
through an egress stage, and every cycle passes through a feedback stage
of its innermost context.  At execution time a runtime expands each stage
into one vertex per worker and each connector into a set of edges,
optionally exchanging records between workers according to the
connector's partitioning function (section 3.1).

The logical graph is also the coordinate system for progress tracking:
Naiad projects physical pointstamps onto logical (stage / connector)
locations, and this module computes the projected could-result-in
relation via :func:`repro.core.pathsummary.minimal_summaries`.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional

from .pathsummary import PathSummary


class StageKind(enum.Enum):
    """Role of a stage in the timely dataflow graph."""

    NORMAL = "normal"
    INPUT = "input"
    INGRESS = "ingress"
    EGRESS = "egress"
    FEEDBACK = "feedback"


class LoopContext:
    """A (possibly nested) loop context (section 2.1)."""

    __slots__ = ("graph", "parent", "name", "depth")

    def __init__(self, graph: "DataflowGraph", parent: Optional["LoopContext"], name: str):
        self.graph = graph
        self.parent = parent
        self.name = name
        self.depth = 1 if parent is None else parent.depth + 1

    def __repr__(self) -> str:
        return "LoopContext(%s, depth=%d)" % (self.name, self.depth)


def _context_depth(context: Optional[LoopContext]) -> int:
    return 0 if context is None else context.depth


class Stage:
    """A logical stage: a factory for identically-programmed vertices.

    A stage declares how many input and output ports it has; ports are
    referenced by index.  ``factory(stage, worker_index)`` must return a
    :class:`repro.core.vertex.Vertex` for one parallel instance.
    """

    __slots__ = (
        "graph",
        "index",
        "name",
        "kind",
        "factory",
        "num_inputs",
        "num_outputs",
        "context",
        "inputs",
        "outputs",
        "opspec",
    )

    def __init__(
        self,
        graph: "DataflowGraph",
        index: int,
        name: str,
        kind: StageKind,
        factory: Optional[Callable[["Stage", int], object]],
        num_inputs: int,
        num_outputs: int,
        context: Optional[LoopContext],
    ):
        self.graph = graph
        self.index = index
        self.name = name
        self.kind = kind
        self.factory = factory
        self.num_inputs = num_inputs
        self.num_outputs = num_outputs
        self.context = context
        #: incoming connector per input port (filled in by connect()).
        self.inputs: List[Optional[Connector]] = [None] * num_inputs
        #: outgoing connectors per output port (fan-out allowed).
        self.outputs: List[List[Connector]] = [[] for _ in range(num_outputs)]
        #: Optional operator metadata (:class:`repro.opt.plan.OpSpec`)
        #: attached by the builder layer; None means "opaque stage" and
        #: the optimizer leaves it untouched.
        self.opspec = None

    # ------------------------------------------------------------------
    # Loop-context bookkeeping.  System stages straddle a context
    # boundary; their input and output sides may live in different
    # contexts (and hence at different timestamp depths).
    # ------------------------------------------------------------------

    @property
    def input_context(self) -> Optional[LoopContext]:
        if self.kind is StageKind.INGRESS:
            if self.context is None:
                raise ValueError("ingress stage %r has no loop context" % self.name)
            return self.context.parent
        return self.context

    @property
    def output_context(self) -> Optional[LoopContext]:
        if self.kind is StageKind.EGRESS:
            if self.context is None:
                raise ValueError("egress stage %r has no loop context" % self.name)
            return self.context.parent
        return self.context

    @property
    def input_depth(self) -> int:
        return _context_depth(self.input_context)

    @property
    def output_depth(self) -> int:
        return _context_depth(self.output_context)

    def timestamp_action(self) -> PathSummary:
        """The summary applied to timestamps crossing this stage."""
        if self.kind is StageKind.INGRESS:
            return PathSummary.ingress(self.input_depth)
        if self.kind is StageKind.EGRESS:
            return PathSummary.egress(self.input_depth)
        if self.kind is StageKind.FEEDBACK:
            return PathSummary.feedback(self.input_depth)
        return PathSummary.identity(self.input_depth)

    def __repr__(self) -> str:
        return "Stage(%d, %s, %s)" % (self.index, self.name, self.kind.value)


class Connector:
    """A logical edge from a stage output port to a stage input port.

    ``partitioner`` optionally maps a record to an integer; the runtime
    routes all records with the same value to the same downstream vertex
    (section 3.1).  Without a partitioner, records stay on the local
    worker (a "pipeline" connection).
    """

    __slots__ = (
        "graph",
        "index",
        "src",
        "src_port",
        "dst",
        "dst_port",
        "partitioner",
        "coalesce",
        "columnar",
    )

    def __init__(
        self,
        graph: "DataflowGraph",
        index: int,
        src: Stage,
        src_port: int,
        dst: Stage,
        dst_port: int,
        partitioner: Optional[Callable[[object], int]],
    ):
        self.graph = graph
        self.index = index
        self.src = src
        self.src_port = src_port
        self.dst = dst
        self.dst_port = dst_port
        self.partitioner = partitioner
        #: Set by the optimizer's batching pass: the destination vertex
        #: tolerates merged deliveries, so the runtime may coalesce
        #: adjacent same-(connector, timestamp) queue entries into one
        #: callback (see ``_Worker._select``).
        self.coalesce = False
        #: Set by ``repro.opt.passes.mark_columnar`` when the columnar
        #: data plane is enabled: the :class:`repro.columnar.Schema`
        #: records on this connector conform to, so senders may encode
        #: them as :class:`~repro.columnar.ColumnarBatch` payloads.
        #: ``None`` keeps the record-list path.
        self.columnar = None

    @property
    def depth(self) -> int:
        """Loop depth of timestamps carried on this connector."""
        return self.dst.input_depth

    def __repr__(self) -> str:
        return "Connector(%d, %s[%d] -> %s[%d])" % (
            self.index,
            self.src.name,
            self.src_port,
            self.dst.name,
            self.dst_port,
        )


class GraphValidationError(ValueError):
    """Raised when a dataflow graph violates the structural rules."""


class UnclosedScopeError(GraphValidationError):
    """A builder scope was still open when the graph was frozen.

    Raised when ``build()`` runs inside a ``with computation.scope(...)``
    / ``with stream.scoped_loop(...)`` block: the scope's feedback wiring
    and validation happen at ``__exit__``, so freezing earlier would
    bake in a half-built loop.
    """

    def __init__(self, names):
        self.names = list(names)
        super().__init__(
            "cannot freeze the graph while scope(s) %s are still open; "
            "call build() after the with-block" % ", ".join(map(repr, self.names))
        )


class FeedbackNotConnectedError(GraphValidationError):
    """A loop scope was closed without connecting its feedback input.

    Every feedback stage created inside a ``scoped_loop`` /
    ``computation.scope`` block must be fed (``loop.feed(stream)``)
    before the with-block exits — a loop whose cycle is never closed
    deadlocks the iteration it was built for.
    """

    def __init__(self, scope_name, edges):
        self.scope_name = scope_name
        self.edges = edges
        super().__init__(
            "scope %r was closed with %d unconnected feedback edge(s); "
            "call loop.feed(stream) (or edge.feed(stream)) before the "
            "with-block exits" % (scope_name, edges)
        )


class CrossScopeConnectError(GraphValidationError):
    """A connector was drawn between two different loop scopes.

    Streams cross scope boundaries only through ingress/egress stages
    (the builder API's ``scoped_loop`` arranges these); any other
    cross-scope ``connect`` is rejected eagerly at build time.
    """

    def __init__(self, src, src_port, dst, dst_port):
        self.src = src
        self.dst = dst
        super().__init__(
            "connector %r[%d] -> %r[%d] crosses a loop-context boundary; "
            "route it through an ingress or egress stage (use "
            "stream.scoped_loop() / loop.leave_with())"
            % (src.name, src_port, dst.name, dst_port)
        )


class DataflowGraph:
    """A complete logical timely dataflow graph.

    Build with :meth:`new_stage`, :meth:`new_loop_context` and
    :meth:`connect`; call :meth:`freeze` to validate the structure and
    compute the minimal path-summary table used for progress tracking.
    """

    def __init__(self):
        self.stages: List[Stage] = []
        self.connectors: List[Connector] = []
        self.contexts: List[LoopContext] = []
        #: Builder scopes currently inside their with-block (the scope
        #: context managers push/pop); freeze() rejects a graph with
        #: open scopes eagerly.
        self.open_scopes: List[object] = []
        self._frozen = False
        self._summaries = None  # SummaryIndex once frozen

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    def new_loop_context(
        self, parent: Optional[LoopContext] = None, name: Optional[str] = None
    ) -> LoopContext:
        self._check_mutable()
        context = LoopContext(self, parent, name or "loop%d" % len(self.contexts))
        self.contexts.append(context)
        return context

    def new_stage(
        self,
        name: str,
        factory: Optional[Callable[[Stage, int], object]],
        num_inputs: int,
        num_outputs: int,
        kind: StageKind = StageKind.NORMAL,
        context: Optional[LoopContext] = None,
    ) -> Stage:
        self._check_mutable()
        if kind in (StageKind.INGRESS, StageKind.EGRESS, StageKind.FEEDBACK):
            if context is None:
                raise GraphValidationError(
                    "%s stage %r requires a loop context" % (kind.value, name)
                )
        if kind is StageKind.INPUT and context is not None:
            raise GraphValidationError("input stages must be in the streaming context")
        stage = Stage(
            self, len(self.stages), name, kind, factory, num_inputs, num_outputs, context
        )
        self.stages.append(stage)
        return stage

    def connect(
        self,
        src: Stage,
        src_port: int,
        dst: Stage,
        dst_port: int,
        partitioner: Optional[Callable[[object], int]] = None,
    ) -> Connector:
        self._check_mutable()
        if not 0 <= src_port < src.num_outputs:
            raise GraphValidationError("bad output port %d on %r" % (src_port, src))
        if not 0 <= dst_port < dst.num_inputs:
            raise GraphValidationError("bad input port %d on %r" % (dst_port, dst))
        if dst.inputs[dst_port] is not None:
            raise GraphValidationError(
                "input port %d of %r is already connected" % (dst_port, dst)
            )
        if src.output_context is not dst.input_context:
            raise CrossScopeConnectError(src, src_port, dst, dst_port)
        connector = Connector(
            self, len(self.connectors), src, src_port, dst, dst_port, partitioner
        )
        self.connectors.append(connector)
        src.outputs[src_port].append(connector)
        dst.inputs[dst_port] = connector
        return connector

    def _check_mutable(self) -> None:
        if self._frozen:
            raise GraphValidationError("graph is frozen; no further mutation allowed")

    # ------------------------------------------------------------------
    # Validation and summary computation.
    # ------------------------------------------------------------------

    def freeze(self) -> None:
        """Validate the structure and compute could-result-in summaries.

        Summaries are computed *per scope* (one table per loop context
        plus the root, child scopes collapsed to boundary nodes) and
        exposed through a hierarchical :class:`repro.core.scope
        .SummaryIndex` that keeps the mapping interface of the old
        global table.
        """
        if self._frozen:
            return
        if self.open_scopes:
            raise UnclosedScopeError(
                scope.context.name for scope in self.open_scopes
            )
        self.validate()
        from .scope import build_summary_index

        self._summaries = build_summary_index(self)
        self._frozen = True

    @property
    def frozen(self) -> bool:
        return self._frozen

    def validate(self) -> None:
        for stage in self.stages:
            for port, connector in enumerate(stage.inputs):
                if connector is None:
                    raise GraphValidationError(
                        "input port %d of %r is not connected" % (port, stage)
                    )
        self._check_acyclic_without_feedback()

    def _check_acyclic_without_feedback(self) -> None:
        """Every cycle must pass through a feedback stage (section 2.1)."""
        in_degree = {stage: 0 for stage in self.stages}
        for connector in self.connectors:
            if connector.src.kind is StageKind.FEEDBACK:
                continue
            in_degree[connector.dst] += 1
        ready = [stage for stage, degree in in_degree.items() if degree == 0]
        seen = 0
        while ready:
            stage = ready.pop()
            seen += 1
            if stage.kind is StageKind.FEEDBACK:
                continue
            for outputs in stage.outputs:
                for connector in outputs:
                    in_degree[connector.dst] -= 1
                    if in_degree[connector.dst] == 0:
                        ready.append(connector.dst)
        if seen != len(self.stages):
            cyclic = [
                stage.name
                for stage, degree in in_degree.items()
                if degree > 0
            ]
            raise GraphValidationError(
                "cycle without a feedback stage involving %r" % (cyclic,)
            )

    @property
    def summaries(self):
        """The hierarchical :class:`repro.core.scope.SummaryIndex`.

        Supports ``get((l1, l2))`` / ``(l1, l2) in`` / ``[...]`` exactly
        like the old global dict of antichains.
        """
        if self._summaries is None:
            raise GraphValidationError("freeze() the graph before using summaries")
        return self._summaries

    @property
    def summary_index(self):
        """Alias of :attr:`summaries`, named for scope-aware callers."""
        return self.summaries

    def input_stages(self) -> List[Stage]:
        return [stage for stage in self.stages if stage.kind is StageKind.INPUT]

    def __repr__(self) -> str:
        return "DataflowGraph(%d stages, %d connectors)" % (
            len(self.stages),
            len(self.connectors),
        )
