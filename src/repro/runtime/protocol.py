"""The distributed progress tracking protocol (paper section 3.3).

Workers never update their local occurrence counts directly.  Instead,
every callback completion produces an ordered batch of ``(pointstamp,
delta)`` progress updates — the ``+1`` for each send and notification
request, followed by the ``-1`` for the event just processed — which is
disseminated to a *local view* (:class:`repro.core.progress.ProgressState`)
at every process.  Broadcasts between a pair of nodes are FIFO; across
nodes they interleave arbitrarily, so views can transiently disagree
(and counts can dip negative), but no local frontier ever passes the
global frontier.

Dissemination runs in one of four modes, matching Figure 6c:

``none``
    every worker batch is broadcast to all processes immediately;
``local``
    batches accumulate in a per-process buffer that nets matching
    updates and flushes only when the safety condition requires;
``global``
    batches go to a central (cluster-level) accumulator that nets
    updates from all processes before broadcasting;
``local+global``
    both: process-level buffers feed the central accumulator.

The buffering safety condition is the paper's: a buffered pointstamp
``p`` may be withheld while either (a) some *other* element of the local
frontier could-result-in ``p``, or (b) ``p`` is a vertex (stage)
pointstamp whose net update — local count, plus buffered delta, plus
updates sent but not yet seen back — is strictly positive.  When any
buffered pointstamp fails both tests the whole buffer is flushed, with
positive deltas sent before negative ones.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..core.graph import Stage
from ..core.progress import Pointstamp, ProgressState
from ..core.scope import ScopeNode
from ..sim.network import Network

#: One progress update on the wire: location id + timestamp + delta.
UPDATE_WIRE_BYTES = 20

ProgressUpdate = Tuple[Pointstamp, int]

PROTOCOL_MODES = ("none", "local", "global", "local+global")


def wire_size(updates: List[ProgressUpdate]) -> int:
    return UPDATE_WIRE_BYTES * len(updates)


def _may_hold_update(
    state: ProgressState,
    pointstamp: Pointstamp,
    buffered: int,
    in_flight: int,
    scope_pending: Optional[Callable[[Pointstamp], bool]] = None,
) -> bool:
    """The paper's buffering safety condition, amended for liveness.

    (a) Some *other* element of the local frontier could-result-in the
    pointstamp: flushing can wait, because no recipient's frontier can
    advance past it anyway.

    (b) For a vertex pointstamp whose buffered delta is *positive* and
    whose net update (local count + buffer + in-flight) stays strictly
    positive: withholding a surplus ``+1`` cannot wrongly advance anyone.

    The amendment: the paper states (b) without the positive-delta
    restriction, but two processes that each hold notification *decrements*
    under (b) — each computing a positive net from its own view, unaware
    of the other's withheld ``-1`` — deadlock the computation.  Restricting
    (b) to positive buffered deltas preserves the traffic savings (netting
    still cancels matched pairs in-buffer) and guarantees that decrements
    eventually disseminate.

    Scope-boundary pointstamps (a :class:`ScopeNode` location, produced
    when a summarized scope's interior updates are projected onto its
    boundary) get a third hold reason: while this endpoint knows of
    interior work still queued for the scope at that projected time
    (``scope_pending``), the boundary delta may be withheld — once the
    interior drains, the final callback's submission dirties the entry
    and forces the flush.  Holding is always safe (withheld updates only
    make peers more conservative); the pending test only bounds how long
    the hold lasts.
    """
    if state.frontier_dominates(pointstamp):
        return True
    location = pointstamp.location
    if isinstance(location, ScopeNode):
        if scope_pending is not None and scope_pending(pointstamp):
            return True
        # Condition (b) applies to boundary pointstamps too: a surplus
        # positive whose globally visible net stays strictly positive
        # keeps every peer conservative about the scope.  This is what
        # coalesces boundary deltas when the loop's records live mostly
        # on *other* processes and the local pending count is zero.
        if buffered > 0:
            net = state.occurrence.get(pointstamp, 0) + buffered + in_flight
            if net > 0:
                return True
        return False
    if buffered > 0 and isinstance(location, Stage):
        net = state.occurrence.get(pointstamp, 0) + buffered + in_flight
        if net > 0:
            return True
    return False


def net_updates(updates: List[ProgressUpdate]) -> List[ProgressUpdate]:
    """Combine updates with the same pointstamp; positives first."""
    combined: Dict[Pointstamp, int] = {}
    for pointstamp, delta in updates:
        combined[pointstamp] = combined.get(pointstamp, 0) + delta
    merged = [(p, d) for p, d in combined.items() if d != 0]
    merged.sort(key=lambda item: item[1], reverse=True)
    return merged


class ProgressView:
    """A process's local view of global progress.

    Wraps a :class:`ProgressState` and the worker notification recheck
    hook: whenever updates are applied, pending notifications at this
    process may have become deliverable.
    """

    def __init__(
        self,
        summaries,
        on_change: Optional[Callable[[], None]] = None,
        cri_cache: Optional[Dict] = None,
    ):
        self.state = ProgressState(summaries, cri_cache=cri_cache)
        self.on_change = on_change
        #: Called with the applied update list after every ``apply`` —
        #: even when the frontier did not move, because occurrence-count
        #: churn invalidates the accumulators' hold-verdict memos.
        self.listeners: List[Callable[[List[ProgressUpdate]], None]] = []

    def apply(self, updates: List[ProgressUpdate]) -> None:
        state = self.state
        before = state.version
        for pointstamp, delta in updates:
            state.update(pointstamp, delta)
        for listener in self.listeners:
            listener(updates)
        # Deliverability can only change when the frontier moved.
        if self.on_change is not None and state.version != before:
            self.on_change()

    def snapshot(self) -> Dict[Pointstamp, int]:
        """The occurrence counts this view currently holds (a copy)."""
        return dict(self.state.occurrence)

    def reset(self, occurrence: Dict[Pointstamp, int]) -> None:
        """Rebuild the view from checkpointed occurrence counts.

        Used by failure recovery (section 3.4): every peer discards its
        progress state and re-derives precursor counts and the frontier
        from the counts recorded at the last consistent checkpoint.  The
        path summaries and the shared could-result-in cache are reused —
        they are properties of the (unchanged) dataflow graph.
        """
        state = self.state
        self.state = ProgressState(state._summaries, cri_cache=state._cri_cache)
        # Apply through the normal path so on_change fires and pending
        # notifications deliverable under the restored frontier run.
        self.apply([(p, d) for p, d in occurrence.items() if d])

    def unblocked(self, pointstamp: Pointstamp) -> bool:
        """True when no *other* active pointstamp could-result-in it.

        This is the delivery test for notifications: the requesting
        worker knows its own request exists, so the pointstamp itself
        need not be visible in the view (its ``+1`` may still be held in
        an accumulator elsewhere).  Scanning the frontier suffices:
        could-result-in is transitive and every active pointstamp is
        dominated by some frontier element, so an active blocker implies
        a frontier blocker.
        """
        return not self.state.frontier_dominates(pointstamp)


class ProtocolNode:
    """Per-process protocol endpoint: buffering, flushing, dissemination.

    One node exists per process; in the ``global`` modes a single extra
    :class:`CentralAccumulator` nets updates cluster-wide.  The node with
    index 0 hosts the central accumulator (mirroring Naiad, where the
    cluster-level accumulator lives in one process).
    """

    def __init__(
        self,
        process: int,
        num_processes: int,
        mode: str,
        view: ProgressView,
        network: Network,
        nodes: List["ProtocolNode"],
        central: Optional["CentralAccumulator"],
        *,
        members: Optional[List[int]] = None,
        mirror: bool = False,
    ):
        if mode not in PROTOCOL_MODES:
            raise ValueError("unknown protocol mode %r" % mode)
        self.process = process
        self.num_processes = num_processes
        self.mode = mode
        self.view = view
        self.network = network
        self.nodes = nodes
        self.central = central
        #: Current cluster membership (a live, shared list under elastic
        #: rescaling); None broadcasts to range(num_processes).
        self.members = members
        #: A mirror node shares another process's view object (elastic
        #: add_process): it buffers and flushes its own workers' updates
        #: normally but must not apply received broadcasts — the view
        #: owner's delivery already applies them to the shared object.
        self.mirror = mirror
        self.buffer: Dict[Pointstamp, int] = {}
        self._in_flight: Dict[int, List[ProgressUpdate]] = {}
        self._in_flight_totals: Dict[Pointstamp, int] = {}
        self._next_seq = 0
        #: Generation-fencing ledger for in-flight protocol copies
        #: (installed by the cluster; see cluster._ProgressFence).
        self.fence = None
        #: Scope-interior pending test (installed by the cluster under
        #: scoped progress tracking); None means flat behaviour.
        self.scope_pending: Optional[Callable[[Pointstamp], bool]] = None
        #: Deferred-flush scheduler (installed by the cluster under
        #: scoped tracking): called with a thunk to run one accumulation
        #: interval later.  When set, an unholdable buffer is not
        #: flushed per callback but once per interval — Naiad batches
        #: its progress updates the same way (the paper's §6 micro-
        #: benchmark measures the resulting coordination rounds), and
        #: boundary deltas from a summarized scope coalesce heavily
        #: within an interval.  The timer is a simulator event, so a
        #: pending flush keeps ``run()`` alive: liveness no longer
        #: depends on the hold conditions alone.
        self.defer_flush: Optional[Callable[[Callable[[], None]], None]] = None
        self._flush_scheduled = False
        #: Hold-verdict memo with exact invalidation: an entry maps a
        #: pointstamp to ``(frontier version vector, verdict)`` and is
        #: dropped when any input of its verdict changes — its buffered
        #: delta (submit), its in-flight total (ledger), its occurrence
        #: count (view listener) — while a frontier move invalidates
        #: only the entries whose version vector actually advanced
        #: (inner-iteration churn in *other* scopes leaves a verdict's
        #: vector, and hence its memo entry, intact).
        self._hold_cache: Dict[Pointstamp, Tuple[Tuple, bool]] = {}
        self._hold_version = -1
        #: Incremental safety-condition scan — the fix for the measured
        #: 64-computer hot path (_maybe_flush runs on every submit and
        #: every progress receive, and used to rescan the whole buffer
        #: each time).  ``_verified`` means every buffered pointstamp
        #: outside ``_dirty`` was proven holdable and none of those
        #: verdicts has been invalidated since, so a recheck only needs
        #: to look at the dirty set.
        self._verified = False
        self._dirty: set = set()
        self.hold_evals = 0
        self.hold_memo_hits = 0
        view.listeners.append(self._note_view_updates)

    # ------------------------------------------------------------------
    # Worker-side entry point.
    # ------------------------------------------------------------------

    def submit(self, updates: List[ProgressUpdate]) -> None:
        """A worker on this process finished a callback."""
        if not updates:
            return
        if self.mode == "none":
            self._broadcast(net_updates(updates))
        elif self.mode == "global":
            self._send_to_central(net_updates(updates))
        else:  # local accumulation (with or without global)
            cache = self._hold_cache
            dirty = self._dirty
            for pointstamp, delta in updates:
                self.buffer[pointstamp] = self.buffer.get(pointstamp, 0) + delta
                if self.buffer[pointstamp] == 0:
                    del self.buffer[pointstamp]
                cache.pop(pointstamp, None)
                dirty.add(pointstamp)
            self._maybe_flush()

    # ------------------------------------------------------------------
    # The buffering safety condition.
    # ------------------------------------------------------------------

    def _note_view_updates(self, updates: List[ProgressUpdate]) -> None:
        cache = self._hold_cache
        dirty = self._dirty
        # The applied pointstamps' occurrence counts changed — an input
        # of condition (b) the version vector does not capture.
        for pointstamp, _ in updates:
            cache.pop(pointstamp, None)
            dirty.add(pointstamp)
        version = self.view.state.version
        if version != self._hold_version:
            self._hold_version = version
            # The frontier moved somewhere; re-examine exactly the
            # entries whose version vector advanced.
            state = self.view.state
            stale = [
                pointstamp
                for pointstamp, (vector, _) in cache.items()
                if state.frontier_version_vector(pointstamp.location) != vector
            ]
            for pointstamp in stale:
                del cache[pointstamp]
                dirty.add(pointstamp)

    def _may_hold(self, pointstamp: Pointstamp, buffered: int) -> bool:
        state = self.view.state
        vector = state.frontier_version_vector(pointstamp.location)
        cached = self._hold_cache.get(pointstamp)
        if cached is not None and cached[0] == vector:
            self.hold_memo_hits += 1
            return cached[1]
        self.hold_evals += 1
        verdict = _may_hold_update(
            state,
            pointstamp,
            buffered,
            self._in_flight_totals.get(pointstamp, 0),
            self.scope_pending,
        )
        self._hold_cache[pointstamp] = (vector, verdict)
        return verdict

    def _holds_invalidated(self, pointstamp: Pointstamp) -> None:
        if self._hold_cache.pop(pointstamp, None) is not None:
            self._dirty.add(pointstamp)

    def _scan_holds(self) -> bool:
        """True iff the whole buffer may (still) be withheld.

        When the previous scan verified the buffer, only pointstamps
        whose verdict inputs changed since (the dirty set) are
        re-examined; the rest are covered by exact invalidation.
        """
        buffer = self.buffer
        if self._verified:
            dirty = self._dirty
            if not dirty:
                self.hold_memo_hits += len(buffer)
                return True
            examined = 0
            for pointstamp in dirty:
                delta = buffer.get(pointstamp)
                if delta is not None:
                    examined += 1
                    if not self._may_hold(pointstamp, delta):
                        return False
            dirty.clear()
            # The entries the dirty-set scan skipped are verdicts
            # reused as-is — each one an evaluation the flat rescan
            # performed every round.
            self.hold_memo_hits += len(buffer) - examined
            return True
        if all(self._may_hold(p, d) for p, d in buffer.items()):
            self._verified = True
            self._dirty.clear()
            return True
        return False

    def _maybe_flush(self) -> None:
        if not self.buffer:
            return
        if self._scan_holds():
            return
        if self.defer_flush is not None:
            if not self._flush_scheduled:
                self._flush_scheduled = True
                self.defer_flush(self._deferred_flush)
            return
        self._flush_now()

    def _deferred_flush(self) -> None:
        self._flush_scheduled = False
        # Conditions may have improved while the timer was pending
        # (e.g. the unholdable delta netted away); flush only if the
        # buffer still fails the safety scan.
        if self.buffer and not self._scan_holds():
            self._flush_now()

    def _flush_now(self) -> None:
        updates = net_updates(list(self.buffer.items()))
        self.buffer.clear()
        self._hold_cache.clear()
        self._verified = False
        self._dirty.clear()
        if self.mode == "local+global":
            self._send_to_central(updates)
        else:
            self._broadcast(updates)

    # ------------------------------------------------------------------
    # Dissemination.
    # ------------------------------------------------------------------

    def _remember_in_flight(self, updates: List[ProgressUpdate]) -> int:
        seq = self._next_seq
        self._next_seq += 1
        self._in_flight[seq] = updates
        totals = self._in_flight_totals
        for pointstamp, delta in updates:
            totals[pointstamp] = totals.get(pointstamp, 0) + delta
            self._holds_invalidated(pointstamp)
        return seq

    def _forget_in_flight(self, seq: int) -> None:
        updates = self._in_flight.pop(seq, None)
        if updates is None:
            return
        totals = self._in_flight_totals
        for pointstamp, delta in updates:
            remaining = totals.get(pointstamp, 0) - delta
            if remaining:
                totals[pointstamp] = remaining
            else:
                totals.pop(pointstamp, None)
            self._holds_invalidated(pointstamp)

    def _broadcast(self, updates: List[ProgressUpdate]) -> None:
        if not updates:
            return
        seq = self._remember_in_flight(updates)
        covered = ((self.process, seq),)
        size = wire_size(updates)
        targets = self.members if self.members is not None else range(self.num_processes)
        for dst in list(targets):
            node = self.nodes[dst]
            deliver = lambda node=node: node.receive(updates, covered)
            if self.fence is not None:
                deliver = self.fence.register(self.process, dst, deliver)
            self.network.send(self.process, dst, size, "progress", deliver)

    def _send_to_central(self, updates: List[ProgressUpdate]) -> None:
        if not updates:
            return
        seq = self._remember_in_flight(updates)
        central = self.central
        deliver = lambda: central.accumulate(updates, (self.process, seq))
        if self.fence is not None:
            deliver = self.fence.register(self.process, central.process, deliver)
        self.network.send(
            self.process,
            central.process,
            wire_size(updates),
            "progress",
            deliver,
        )

    # ------------------------------------------------------------------
    # Checkpoint / recovery support (section 3.4).
    # ------------------------------------------------------------------

    def drain_buffer(self) -> List[ProgressUpdate]:
        """Surrender all withheld updates for a synchronous flush.

        Valid only at a checkpoint barrier, when the network holds no
        in-flight messages: every update this node sent has been applied
        at every peer, so the in-flight ledgers are cleared rather than
        waiting for acknowledgement rounds.
        """
        updates = list(self.buffer.items())
        self.buffer.clear()
        self._in_flight.clear()
        self._in_flight_totals.clear()
        self._hold_cache.clear()
        self._hold_version = -1
        self._verified = False
        self._dirty.clear()
        return updates

    def reset(self) -> None:
        """Discard buffered and in-flight ledger state (failure recovery)."""
        self.buffer.clear()
        self._in_flight.clear()
        self._in_flight_totals.clear()
        self._hold_cache.clear()
        self._hold_version = -1
        self._verified = False
        self._dirty.clear()

    def receive(
        self,
        updates: List[ProgressUpdate],
        covered: Tuple[Tuple[int, int], ...],
    ) -> None:
        """A progress broadcast arrived at this process."""
        for origin, seq in covered:
            if origin == self.process:
                self._forget_in_flight(seq)
        if not self.mirror:
            # A mirror node's view is another process's object; that
            # process's own delivery applies the updates exactly once.
            self.view.apply(updates)
        # The paper: on receiving updates the accumulator must re-test
        # whether its buffered pointstamps may still be withheld.
        self._maybe_flush()


class CentralAccumulator:
    """The cluster-level accumulator (hosted on one process).

    Nets updates arriving from process nodes and broadcasts their
    combined effect, subject to the same safety condition evaluated
    against the hosting process's view.
    """

    def __init__(
        self,
        process: int,
        num_processes: int,
        view: ProgressView,
        network: Network,
        nodes: List[ProtocolNode],
        *,
        members: Optional[List[int]] = None,
    ):
        self.process = process
        self.num_processes = num_processes
        self.view = view
        self.network = network
        self.nodes = nodes
        #: Current cluster membership (shared with the cluster under
        #: elastic rescaling); None broadcasts to range(num_processes).
        self.members = members
        self.buffer: Dict[Pointstamp, int] = {}
        self._covered: List[Tuple[int, int]] = []
        self._in_flight: Dict[int, List[ProgressUpdate]] = {}
        self._in_flight_totals: Dict[Pointstamp, int] = {}
        self._next_seq = 0
        #: Generation-fencing ledger for in-flight protocol copies
        #: (installed by the cluster; see cluster._ProgressFence).
        self.fence = None
        #: Scope-interior pending test; the cluster installs a
        #: *cluster-wide* variant here (it sees every process's queues),
        #: whereas each node's test covers only its own process.
        self.scope_pending: Optional[Callable[[Pointstamp], bool]] = None
        #: Deferred-flush scheduler (see :class:`ProtocolNode`): batches
        #: both update broadcasts and the empty acknowledgement rounds
        #: into one broadcast per accumulation interval.
        self.defer_flush: Optional[Callable[[Callable[[], None]], None]] = None
        self._flush_scheduled = False
        #: Hold-verdict memo and incremental dirty-set scan; same
        #: invalidation discipline as :class:`ProtocolNode` (evaluated
        #: against the hosting process's view, on which this registers a
        #: listener).
        self._hold_cache: Dict[Pointstamp, Tuple[Tuple, bool]] = {}
        self._hold_version = -1
        self._verified = False
        self._dirty: set = set()
        self.hold_evals = 0
        self.hold_memo_hits = 0
        view.listeners.append(self._note_view_updates)

    def accumulate(
        self, updates: List[ProgressUpdate], origin: Tuple[int, int]
    ) -> None:
        cache = self._hold_cache
        dirty = self._dirty
        for pointstamp, delta in updates:
            self.buffer[pointstamp] = self.buffer.get(pointstamp, 0) + delta
            if self.buffer[pointstamp] == 0:
                del self.buffer[pointstamp]
            cache.pop(pointstamp, None)
            dirty.add(pointstamp)
        self._covered.append(origin)
        self._maybe_flush()

    def _note_view_updates(self, updates: List[ProgressUpdate]) -> None:
        cache = self._hold_cache
        dirty = self._dirty
        # The applied pointstamps' occurrence counts changed — an input
        # of condition (b) the version vector does not capture.
        for pointstamp, _ in updates:
            cache.pop(pointstamp, None)
            dirty.add(pointstamp)
        version = self.view.state.version
        if version != self._hold_version:
            self._hold_version = version
            # The frontier moved somewhere; re-examine exactly the
            # entries whose version vector advanced.
            state = self.view.state
            stale = [
                pointstamp
                for pointstamp, (vector, _) in cache.items()
                if state.frontier_version_vector(pointstamp.location) != vector
            ]
            for pointstamp in stale:
                del cache[pointstamp]
                dirty.add(pointstamp)

    def _may_hold(self, pointstamp: Pointstamp, buffered: int) -> bool:
        state = self.view.state
        vector = state.frontier_version_vector(pointstamp.location)
        cached = self._hold_cache.get(pointstamp)
        if cached is not None and cached[0] == vector:
            self.hold_memo_hits += 1
            return cached[1]
        self.hold_evals += 1
        verdict = _may_hold_update(
            state,
            pointstamp,
            buffered,
            self._in_flight_totals.get(pointstamp, 0),
            self.scope_pending,
        )
        self._hold_cache[pointstamp] = (vector, verdict)
        return verdict

    def _holds_invalidated(self, pointstamp: Pointstamp) -> None:
        if self._hold_cache.pop(pointstamp, None) is not None:
            self._dirty.add(pointstamp)

    def _scan_holds(self) -> bool:
        """True iff the whole buffer may (still) be withheld.

        Mirrors :meth:`ProtocolNode._scan_holds`: once the buffer has
        been verified, only dirty pointstamps are re-examined.
        """
        buffer = self.buffer
        if self._verified:
            dirty = self._dirty
            if not dirty:
                self.hold_memo_hits += len(buffer)
                return True
            examined = 0
            for pointstamp in dirty:
                delta = buffer.get(pointstamp)
                if delta is not None:
                    examined += 1
                    if not self._may_hold(pointstamp, delta):
                        return False
            dirty.clear()
            # The entries the dirty-set scan skipped are verdicts
            # reused as-is — each one an evaluation the flat rescan
            # performed every round.
            self.hold_memo_hits += len(buffer) - examined
            return True
        if all(self._may_hold(p, d) for p, d in buffer.items()):
            self._verified = True
            self._dirty.clear()
            return True
        return False

    def recheck(self) -> None:
        self._maybe_flush()

    def drain_buffer(self) -> List[ProgressUpdate]:
        """Surrender withheld updates for a checkpoint-barrier flush.

        See :meth:`ProtocolNode.drain_buffer`; additionally drops the
        covered-origin list — the origin nodes' ledgers are cleared by
        the same barrier, so no acknowledgements are owed.
        """
        updates = list(self.buffer.items())
        self.buffer.clear()
        self._covered = []
        self._in_flight.clear()
        self._in_flight_totals.clear()
        self._hold_cache.clear()
        self._hold_version = -1
        self._verified = False
        self._dirty.clear()
        return updates

    def reset(self) -> None:
        """Discard accumulated and in-flight state (failure recovery)."""
        self.buffer.clear()
        self._covered = []
        self._in_flight.clear()
        self._in_flight_totals.clear()
        self._hold_cache.clear()
        self._hold_version = -1
        self._verified = False
        self._dirty.clear()

    def _maybe_flush(self) -> None:
        if not self.buffer:
            if self._covered:
                # All buffered updates cancelled: acknowledge origins so
                # their in-flight ledgers do not pin condition (b).
                if self.defer_flush is not None:
                    self._schedule_flush()
                else:
                    self._broadcast([], tuple(self._covered))
                    self._covered = []
            return
        if self._scan_holds():
            return
        if self.defer_flush is not None:
            self._schedule_flush()
            return
        self._flush_now()

    def _schedule_flush(self) -> None:
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self.defer_flush(self._deferred_flush)

    def _deferred_flush(self) -> None:
        self._flush_scheduled = False
        if self.buffer and self._scan_holds():
            # The buffer became holdable while the timer was pending;
            # keep the covered list for the next real flush, exactly as
            # the undeferred path would.
            return
        if self.buffer or self._covered:
            self._flush_now()

    def _flush_now(self) -> None:
        updates = net_updates(list(self.buffer.items()))
        covered = tuple(self._covered)
        self.buffer.clear()
        self._hold_cache.clear()
        self._verified = False
        self._dirty.clear()
        self._covered = []
        self._broadcast(updates, covered)

    def _broadcast(
        self,
        updates: List[ProgressUpdate],
        covered: Tuple[Tuple[int, int], ...],
    ) -> None:
        seq = self._next_seq
        self._next_seq += 1
        if updates:
            self._in_flight[seq] = updates
            totals = self._in_flight_totals
            for pointstamp, delta in updates:
                totals[pointstamp] = totals.get(pointstamp, 0) + delta
                self._holds_invalidated(pointstamp)
        covered = covered + ((-1, seq),)
        size = wire_size(updates)
        targets = self.members if self.members is not None else range(self.num_processes)
        for dst in list(targets):
            node = self.nodes[dst]
            deliver = lambda node=node: self._deliver(node, updates, covered)
            if self.fence is not None:
                deliver = self.fence.register(self.process, dst, deliver)
            self.network.send(self.process, dst, size, "progress", deliver)

    def _deliver(
        self,
        node: ProtocolNode,
        updates: List[ProgressUpdate],
        covered: Tuple[Tuple[int, int], ...],
    ) -> None:
        if node.process == self.process:
            for origin, seq in covered:
                if origin == -1:
                    acked = self._in_flight.pop(seq, None)
                    if acked:
                        totals = self._in_flight_totals
                        for pointstamp, delta in acked:
                            remaining = totals.get(pointstamp, 0) - delta
                            if remaining:
                                totals[pointstamp] = remaining
                            else:
                                totals.pop(pointstamp, None)
                            self._holds_invalidated(pointstamp)
        node.receive(updates, covered)
        if node.process == self.process:
            self.recheck()
