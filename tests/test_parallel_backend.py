"""A/B equivalence of the inline and multiprocessing execution backends.

The mp backend moves vertex callback *bodies* into pool children; the
discrete-event coordinator still owns virtual time and the progress
protocol, so the two backends must be bit-identical: same final virtual
time, same foreground event count, same frontier trace, same progress
traffic, and the same per-epoch outputs — with and without failures and
recovery.  These tests run the same programs under both backends across
graphs and fault-tolerance modes and compare all of those observables.
"""

import pytest

from repro.obs import TraceSink, event_counts, frontier_trace, pool_timelines
from repro.parallel import fork_available
from repro.sim import NetworkConfig

from tests.test_recovery import CASES, FT_MODES, baseline, make_ft, run_cluster

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="mp backend requires the fork start method"
)

POOL_WORKERS = 2


def observe(case, shape, backend, ft=None, kill=None, network=None):
    """Run one configuration and collect every equivalence observable."""
    sink = TraceSink()
    out, comp = run_cluster(
        case,
        shape,
        ft=ft,
        kill=kill,
        network=network,
        backend=backend,
        pool_workers=POOL_WORKERS,
        trace=sink,
    )
    events = list(sink)
    counts = event_counts(events)
    counts.pop("pool", None)  # mp-only bookkeeping, not schedule state
    observables = {
        "virtual_time": comp.sim.now,
        "events_executed": comp.sim.events_executed,
        "outputs": out,
        "frontier": frontier_trace(events),
        "event_counts": counts,
        "progress_messages": dict(comp.network.stats.messages_by_kind),
        "progress_bytes": dict(comp.network.stats.bytes_by_kind),
    }
    if backend == "mp":
        observables["pool_tasks"] = comp.pool.tasks_offloaded
    comp.close()
    return observables


def assert_identical(case, shape, ft=None, kill=None, network=None):
    a = observe(case, shape, "inline", ft=ft, kill=kill, network=network)
    b = observe(case, shape, "mp", ft=ft, kill=kill, network=network)
    offloaded = b.pop("pool_tasks")
    for key in a:
        assert a[key] == b[key], (case, shape, key)
    return offloaded


class TestBackendEquivalence:
    @pytest.mark.parametrize("case", sorted(CASES))
    def test_failure_free_runs_are_bit_identical(self, case):
        offloaded = assert_identical(case, (2, 2))
        assert offloaded > 0  # the pool actually did the work

    @pytest.mark.parametrize("case", ["wordcount", "random-b"])
    @pytest.mark.parametrize("mode", FT_MODES)
    def test_kill_and_recovery_are_bit_identical(self, case, mode):
        shape = (2, 2)
        _, duration = baseline(case, shape)
        assert_identical(
            case, shape, ft=make_ft(mode), kill=(0, duration * 0.4)
        )

    def test_reassign_recovery_is_bit_identical(self):
        shape = (3, 2)
        _, duration = baseline("wordcount", shape)
        assert_identical(
            "wordcount",
            shape,
            ft=make_ft("logging", policy="reassign"),
            kill=(1, duration * 0.5),
        )

    def test_hostile_network_is_bit_identical(self):
        network = NetworkConfig(
            packet_loss_probability=0.1, gc_interval=2e-3, gc_pause=1e-3
        )
        assert_identical(
            "iterate", (2, 2), ft=make_ft("checkpoint"), network=network
        )

    def test_pool_timelines_cover_the_offloaded_work(self):
        sink = TraceSink()
        out, comp = run_cluster(
            "wordcount",
            (2, 2),
            backend="mp",
            pool_workers=POOL_WORKERS,
            trace=sink,
        )
        lines = pool_timelines(list(sink))
        assert sum(line.tasks for line in lines.values()) == (
            comp.pool.tasks_offloaded
        )
        assert all(0 <= rank < POOL_WORKERS for rank in lines)
        comp.close()


class TestChildErrorPropagation:
    def test_failing_udf_surfaces_its_real_traceback(self):
        # A UDF crashing inside a pool child must surface on the
        # coordinator with the child's own stack — exception type,
        # message, the UDF's frame and its actual line number — not
        # just a flattened "something failed in the pool".
        from repro.lib import Stream
        from repro.runtime import ClusterComputation

        def explode(x):
            raise ValueError("boom %d" % x)

        boom_line = explode.__code__.co_firstlineno + 1
        comp = ClusterComputation(
            num_processes=2,
            workers_per_process=2,
            backend="mp",
            pool_workers=POOL_WORKERS,
        )
        inp = comp.new_input()
        Stream.from_input(inp).select(explode).subscribe(lambda t, recs: None)
        comp.build()
        inp.on_next([7])
        inp.on_completed()
        with pytest.raises(RuntimeError) as info:
            comp.run()
        message = str(info.value)
        assert "ValueError" in message
        assert "boom 7" in message
        assert "child traceback" in message
        assert "in explode" in message
        assert "test_parallel_backend.py" in message
        assert "line %d" % boom_line in message
        comp.close()
