"""A Pregel (bulk synchronous parallel) library on timely dataflow (§4.2).

The paper ports Pregel [27] as a library: a custom vertex with several
strongly typed inputs and outputs (messages, aggregated values, graph
mutations), connected via multiple feedback edges in parallel.  This
module reproduces that construction:

- one timely stage hosts the graph partition; loop iterations are
  Pregel supersteps;
- messages flow around a feedback edge, partitioned by target node;
- an optional global aggregator flows around a second, parallel
  feedback edge and is broadcast to every worker;
- graph mutations (add/remove edges) travel with messages.

The user supplies a *vertex program*::

    def compute(ctx: NodeContext) -> None:
        # read ctx.node, ctx.state, ctx.messages, ctx.superstep,
        #      ctx.aggregate, ctx.edges
        ctx.send(target, message)       # deliver next superstep
        ctx.set_state(new_state)
        ctx.add_edge(dst) / ctx.remove_edge(dst)
        ctx.contribute(value)           # to the global aggregator
        ctx.vote_to_halt()

A node is *active* in superstep ``s`` if it received messages or did not
vote to halt in ``s - 1``.  When every node halts and no messages are in
flight the loop drains; final states are emitted when nodes halt (and
re-emitted if reactivated) or at ``max_supersteps``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.timestamp import Timestamp
from ..core.vertex import Vertex
from .stream import Stream, hash_partitioner


class NodeContext:
    """Per-node view handed to the vertex program each superstep."""

    __slots__ = (
        "node",
        "state",
        "edges",
        "messages",
        "superstep",
        "aggregate",
        "_outgoing",
        "_contributions",
        "_halted",
        "_mutated",
    )

    def __init__(self, node, state, edges, messages, superstep, aggregate):
        self.node = node
        self.state = state
        self.edges = edges
        self.messages = messages
        self.superstep = superstep
        self.aggregate = aggregate
        self._outgoing: List[Tuple[Any, Any]] = []
        self._contributions: List[Any] = []
        self._halted = False
        self._mutated = False

    def send(self, target: Any, message: Any) -> None:
        """Deliver ``message`` to ``target`` in the next superstep."""
        self._outgoing.append((target, message))

    def send_to_neighbors(self, message: Any) -> None:
        for target in self.edges:
            self._outgoing.append((target, message))

    def set_state(self, state: Any) -> None:
        self.state = state

    def add_edge(self, dst: Any) -> None:
        """Graph mutation: add an out-edge (visible next superstep)."""
        self.edges.append(dst)
        self._mutated = True

    def remove_edge(self, dst: Any) -> None:
        """Graph mutation: remove one out-edge if present."""
        try:
            self.edges.remove(dst)
            self._mutated = True
        except ValueError:
            pass

    def contribute(self, value: Any) -> None:
        """Add ``value`` to the global aggregate for the next superstep."""
        self._contributions.append(value)

    def vote_to_halt(self) -> None:
        self._halted = True


class _NodeRecord(object):
    __slots__ = ("state", "edges", "halted")

    def __init__(self, state, edges):
        self.state = state
        self.edges = edges
        self.halted = False


class PregelVertex(Vertex):
    """The custom timely vertex hosting one partition of the graph.

    Inputs: 0 = initial graph (via ingress), 1 = messages (feedback),
    2 = aggregate broadcast (second feedback, present when aggregation
    is enabled).  Outputs: 0 = messages, 1 = final states,
    2 = aggregator contributions.
    """

    _CONFIG_ATTRS = ("compute", "combine", "aggregate_combine")

    def __init__(
        self,
        compute: Callable[[NodeContext], None],
        max_supersteps: int,
        combine: Optional[Callable[[Any, Any], Any]] = None,
        aggregate_combine: Optional[Callable[[Any, Any], Any]] = None,
    ):
        super().__init__()
        self.compute = compute
        self.max_supersteps = max_supersteps
        self.combine = combine
        self.aggregate_combine = aggregate_combine
        #: epoch -> {node: _NodeRecord}; graph state is per input epoch.
        self.graphs: Dict[int, Dict[Any, _NodeRecord]] = {}
        #: timestamp -> {node: [messages]} for the *current* superstep.
        self.inbox: Dict[Timestamp, Dict[Any, List[Any]]] = {}
        #: timestamp -> aggregate value from the previous superstep.
        self.aggregates: Dict[Timestamp, Any] = {}
        self._notified = set()

    # ------------------------------------------------------------------

    def _request(self, timestamp: Timestamp) -> None:
        if timestamp not in self._notified:
            self._notified.add(timestamp)
            self.notify_at(timestamp)

    def on_recv(self, input_port: int, records: List[Any], timestamp: Timestamp) -> None:
        if input_port == 0:
            graph = self.graphs.setdefault(timestamp.epoch, {})
            for node, state, edges in records:
                graph[node] = _NodeRecord(state, list(edges))
            self._request(timestamp)
        elif input_port == 1:
            inbox = self.inbox.setdefault(timestamp, {})
            combine = self.combine
            for target, message in records:
                if combine is not None and target in inbox and inbox[target]:
                    inbox[target][0] = combine(inbox[target][0], message)
                else:
                    inbox.setdefault(target, []).append(message)
            self._request(timestamp)
        else:
            for _peer, value in records:
                if timestamp in self.aggregates and self.aggregate_combine:
                    self.aggregates[timestamp] = self.aggregate_combine(
                        self.aggregates[timestamp], value
                    )
                else:
                    self.aggregates[timestamp] = value
            self._request(timestamp)

    def on_notify(self, timestamp: Timestamp) -> None:
        self._notified.discard(timestamp)
        superstep = timestamp.counters[-1]
        graph = self.graphs.get(timestamp.epoch)
        if graph is None:
            return
        inbox = self.inbox.pop(timestamp, {})
        aggregate = self.aggregates.pop(timestamp, None)
        outgoing: List[Tuple[Any, Any]] = []
        contributions: List[Any] = []
        finals: List[Tuple[Any, Any]] = []
        last = superstep >= self.max_supersteps - 1
        for node, record in graph.items():
            messages = inbox.get(node, [])
            if record.halted and not messages:
                continue
            record.halted = False
            ctx = NodeContext(
                node, record.state, record.edges, messages, superstep, aggregate
            )
            self.compute(ctx)
            record.state = ctx.state
            record.edges = ctx.edges
            outgoing.extend(ctx._outgoing)
            contributions.extend(ctx._contributions)
            if ctx._halted:
                record.halted = True
            if ctx._halted or last:
                finals.append((node, ctx.state, superstep))
        if outgoing and not last:
            self.send_by(0, outgoing, timestamp)
        if contributions and not last and self.stage.num_outputs > 2:
            self.send_by(2, contributions, timestamp)
        if finals:
            self.send_by(1, finals, timestamp)


class _AggregatorVertex(Vertex):
    """Reduces contributions and broadcasts the result to all workers."""

    _CONFIG_ATTRS = ("combine",)

    def __init__(self, combine: Callable[[Any, Any], Any]):
        super().__init__()
        self.combine = combine
        self.partial: Dict[Timestamp, Any] = {}

    def on_recv(self, input_port: int, records: List[Any], timestamp: Timestamp) -> None:
        if timestamp not in self.partial:
            self.partial[timestamp] = records[0]
            records = records[1:]
            self.notify_at(timestamp)
        value = self.partial[timestamp]
        for record in records:
            value = self.combine(value, record)
        self.partial[timestamp] = value

    def on_notify(self, timestamp: Timestamp) -> None:
        value = self.partial.pop(timestamp)
        self.send_by(0, [(peer, value) for peer in range(self.peers)], timestamp)


def pregel(
    graph_stream: Stream,
    compute: Callable[[NodeContext], None],
    max_supersteps: int,
    combine: Optional[Callable[[Any, Any], Any]] = None,
    aggregator: Optional[Callable[[Any, Any], Any]] = None,
    name: str = "pregel",
) -> Stream:
    """Assemble the Pregel dataflow around ``graph_stream``.

    ``graph_stream`` carries ``(node, initial_state, [out_edges])``
    records; the returned stream carries ``(node, state, superstep)``
    triples, emitted when a node halts or at the final superstep.  A
    node reactivated after halting emits again at a later superstep;
    :func:`final_states` reduces to the authoritative value per node.
    """
    computation = graph_stream.computation
    num_outputs = 3 if aggregator is not None else 2
    num_inputs = 3 if aggregator is not None else 2
    with graph_stream.scoped_loop(name=name, max_iterations=max_supersteps) as loop:
        stage = loop.stage(
            name,
            lambda s, w: PregelVertex(compute, max_supersteps, combine, aggregator),
            num_inputs,
            num_outputs,
        )
        loop.entered.connect_to(
            stage, 0, partitioner=hash_partitioner(lambda rec: rec[0])
        )
        # Messages: body output 0 -> feedback -> input 1, routed by target.
        loop.feed(Stream(computation, stage, 0))
        loop.feedback.connect_to(
            stage, 1, partitioner=hash_partitioner(lambda rec: rec[0])
        )
        if aggregator is not None:
            agg_stage = loop.stage(
                "%s.aggregate" % name,
                lambda s, w: _AggregatorVertex(aggregator),
                1,
                1,
            )
            Stream(computation, stage, 2).connect_to(
                agg_stage, 0, partitioner=lambda rec: 0
            )
            agg_feedback = loop.feedback_edge(max_supersteps)
            agg_feedback.feed(Stream(computation, agg_stage, 0))
            agg_feedback.stream.connect_to(
                stage, 2, partitioner=lambda rec: rec[0]
            )
        out = loop.leave_with(Stream(computation, stage, 1))
    return out


def final_states(states: Stream, name: str = "pregel_final") -> Stream:
    """Reduce ``(node, state, superstep)`` emissions to one per node.

    Keeps the highest-superstep emission for each node and outputs
    ``(node, state)`` once the epoch is complete.
    """

    return states.group_by(
        lambda rec: rec[0],
        lambda node, recs: [(node, max(recs, key=lambda r: r[2])[1])],
        name=name,
    )
