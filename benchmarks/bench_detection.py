"""Failure detection: time-to-detect vs. false positives (Naiad §3.5).

The paper's point about micro-stragglers is that detection policy is a
*tradeoff*: an aggressive timeout finds real crashes fast but fires on
every GC pause and retransmit stall; a lazy one stays quiet but leaves
the cluster headless for seconds.  This benchmark sweeps the
phi-accrual supervisor's suspicion threshold across hostile network
environments (GC storms, packet loss, both) with one real silent crash
injected per run, and reports:

- **MTTD** — crash to suspicion (the detector's latency);
- **MTTR** — crash to workers-ready (detection + fence + recovery);
- **false suspicions** — processes suspected that never crashed;
- **naive violations** — gaps that would have tripped a fixed
  ``3 x heartbeat_interval`` timeout: the false positives a
  non-adaptive detector would have acted on in the same run.

Every run must still release outputs bit-identical to the failure-free
baseline — false suspicions are *safe* (fence + recovery), just wasted
work.  The workload is the integer ``iterate`` loop, so schedules are
independent of interpreter hash randomization.

``-k budget`` selects the CI guard: under the default phi threshold in
the clean environment the crash must be detected and repaired inside
recorded virtual-time budgets, with zero false suspicions — and the
GC-storm run must show the naive detector *would* have misfired while
the adaptive one did not.
"""

from collections import Counter

from repro.lib import Stream
from repro.obs import TraceSink, detection_stats
from repro.runtime import ClusterComputation, FaultTolerance, SupervisorConfig
from repro.sim import NetworkConfig

from bench_harness import format_table, human_time, report

SHAPE = (3, 2)
EPOCHS = [list(range(8)), [3, 3, 12], [5, 1]] * 3
CRASH_PROCESS = 1
CRASH_FRACTION = 0.4

#: Hostile environments the detector is swept across.  The retransmit
#: timeout is the paper's tuned 20 ms scaled to this workload's
#: sub-millisecond epochs, so a single heartbeat loss is a genuine
#: straggler, not an instant eternity.
ENVIRONMENTS = {
    "clean": dict(),
    "gc-storm": dict(gc_interval=1.5e-3, gc_pause=0.25e-3),
    "lossy": dict(packet_loss_probability=0.02, retransmit_timeout=1e-3),
    "gc+loss": dict(
        gc_interval=1.5e-3,
        gc_pause=0.25e-3,
        packet_loss_probability=0.02,
        retransmit_timeout=1e-3,
    ),
}

PHI_THRESHOLDS = (4.0, 8.0, 12.0)

#: CI budgets for the clean-environment, default-threshold run
#: (virtual seconds; recorded MTTD ~1.2 ms — a cold-window bootstrap
#: detection — and MTTR ~4.3 ms including the reassign restore).
MTTD_BUDGET = 2e-3
MTTR_BUDGET = 8e-3


def make_ft():
    return FaultTolerance(
        mode="checkpoint",
        checkpoint_mode="async",
        checkpoint_every=2,
        state_bytes_per_worker=1 << 18,
        disk_bandwidth=200e6,
        recovery="reassign",
        restart_delay=0.0005,
    )


def sup_cfg(phi_threshold=8.0, **overrides):
    cfg = dict(
        heartbeat_interval=1e-4,
        phi_threshold=phi_threshold,
        min_samples=8,
        window=32,
        min_std=2e-4,
        naive_multiplier=3.0,
        bootstrap_timeout=2.5e-3,
        backoff_jitter=0.0,
    )
    cfg.update(overrides)
    return SupervisorConfig(**cfg)


def iterate_run(network=None, crash_at=None, supervisor=None):
    comp = ClusterComputation(
        num_processes=SHAPE[0],
        workers_per_process=SHAPE[1],
        fault_tolerance=make_ft(),
        network=NetworkConfig(**network) if network is not None else None,
    )
    sink = TraceSink()
    comp.attach_trace_sink(sink)
    inp = comp.new_input()
    out = {}
    (
        Stream.from_input(inp)
        .iterate(
            lambda s: s.select(lambda x: x - 1).where(lambda x: x > 0),
            partitioner=lambda x: x,
        )
        .subscribe(
            lambda t, recs: out.setdefault(t.epoch, Counter()).update(recs)
        )
    )
    comp.build()
    if supervisor is not None:
        comp.attach_supervisor(supervisor)
    if crash_at is not None:
        comp.crash_process(CRASH_PROCESS, at=crash_at)
    for epoch in EPOCHS:
        inp.on_next(epoch)
    inp.on_completed()
    comp.run()
    assert comp.drained(), comp.debug_state()
    return out, comp, sink


def measure(env, phi_threshold, expected, crash_at):
    out, comp, sink = iterate_run(
        network=ENVIRONMENTS[env] or None,
        crash_at=crash_at,
        supervisor=sup_cfg(phi_threshold),
    )
    assert out == expected, (env, phi_threshold)
    sup = comp.supervisor
    stats = detection_stats(sink.events)
    real = [i for i in stats.incidents if i.process == CRASH_PROCESS]
    mttd = real[0].mttd if real and real[0].suspected_at >= crash_at else None
    mttr = real[0].mttr if real else None
    false_suspicions = sum(
        1 for s in sup.suspicions if s["process"] != CRASH_PROCESS
    )
    return {
        "mttd": mttd,
        "mttr": mttr,
        "false": false_suspicions,
        "naive": sup.naive_violations,
        "recoveries": len(comp.recovery.failures),
    }


def experiment():
    expected, clean = {}, None
    base_out, base_comp, _ = iterate_run()
    expected = base_out
    crash_at = base_comp.now * CRASH_FRACTION
    results = {}
    for env in ENVIRONMENTS:
        for phi in PHI_THRESHOLDS:
            results[env, phi] = measure(env, phi, expected, crash_at)
    return results


def test_detection_tradeoff(benchmark):
    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for (env, phi), r in sorted(results.items()):
        rows.append(
            [
                env,
                "%.0f" % phi,
                human_time(r["mttd"]) if r["mttd"] is not None else "-",
                human_time(r["mttr"]) if r["mttr"] is not None else "-",
                r["false"],
                r["naive"],
            ]
        )
    report(
        "detection",
        format_table(
            ["environment", "phi", "MTTD", "MTTR",
             "false suspicions", "naive violations"],
            rows,
        ),
    )

    for (env, phi), r in results.items():
        # The real crash is always repaired (possibly alongside false
        # suspicions, which recovery makes harmless).
        assert r["recoveries"] >= 1, (env, phi)
    # The adaptive/naive gap: under GC storms the fixed timeout would
    # have fired while phi-8 stayed quiet on the healthy processes.
    assert results["gc-storm", 8.0]["naive"] > 0
    assert results["gc-storm", 8.0]["false"] == 0
    # Aggressiveness is monotone where it matters: phi-4 never detects
    # *slower* than phi-12 in the same environment.
    for env in ENVIRONMENTS:
        low, high = results[env, 4.0], results[env, 12.0]
        if low["mttd"] is not None and high["mttd"] is not None:
            assert low["mttd"] <= high["mttd"] + 1e-9, env


def test_detection_mttr_budget():
    """CI guard: clean environment, default threshold — the silent
    crash is found and repaired inside the recorded budgets, with no
    false suspicions; the GC-storm control shows the naive timeout
    would have misfired while the adaptive detector did not."""
    base_out, base_comp, _ = iterate_run()
    crash_at = base_comp.now * CRASH_FRACTION

    r = measure("clean", 8.0, base_out, crash_at)
    assert r["mttd"] is not None and r["mttd"] <= MTTD_BUDGET, r
    assert r["mttr"] is not None and r["mttr"] <= MTTR_BUDGET, r
    assert r["false"] == 0, r

    quiet = iterate_run(
        network=ENVIRONMENTS["gc-storm"], supervisor=sup_cfg(8.0)
    )
    assert quiet[0] == base_out
    sup = quiet[1].supervisor
    assert sup.naive_violations > 0
    assert sup.suspicions == []
    assert quiet[1].recovery.failures == []
