"""Cluster network and micro-straggler models (paper sections 3.5, 5).

The evaluation cluster of the paper: two racks of 32 computers, Gigabit
Ethernet NICs, a 40 Gbps uplink per rack switch.  This module models the
pieces of that environment that shape the paper's results:

- **Links** with per-message latency and NIC bandwidth occupancy; a
  process's NIC serialises egress and ingress transfers, which creates
  the incast contention the paper observes at progress accumulators.
- **Micro-stragglers** (section 3.5): probabilistic packet loss that
  costs a retransmission timeout, and garbage-collection pauses that
  stall an entire process.  Both are switchable so benchmarks can show
  mitigated vs. unmitigated configurations (e.g. 20 ms vs. 300 ms
  minimum retransmit timers, Nagle delays on vs. off).
- **Traffic accounting** by category (``data`` vs. ``progress``), used
  directly by the Figure 6c reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, Tuple

from ..obs.trace import TraceEvent
from .des import Simulator


@dataclass
class NetworkConfig:
    """Tunable constants for the cluster model.

    Defaults approximate the paper's hardware (section 5): Gigabit
    Ethernet (125 MB/s), ~100 µs base one-way latency, Windows TCP
    tuning as described in section 3.5.
    """

    #: One-way propagation + protocol latency for a remote message (s).
    latency: float = 100e-6
    #: NIC bandwidth in bytes/second (Gigabit Ethernet).
    bandwidth: float = 125e6
    #: Fixed per-message wire overhead (headers, framing), bytes.
    per_message_bytes: int = 64
    #: Latency for a message between workers of the same process (s).
    local_latency: float = 2e-6
    #: Probability a message suffers a loss/retransmission event.
    packet_loss_probability: float = 0.0
    #: Delay paid on a loss (minimum retransmit timeout).  The paper
    #: reduces this from 300 ms (Windows default) to 20 ms.
    retransmit_timeout: float = 20e-3
    #: Nagle/delayed-ACK penalty applied to small messages when the
    #: default TCP configuration is left in place (0 = disabled, the
    #: tuned configuration of section 3.5).
    nagle_delay: float = 0.0
    #: Messages smaller than this are subject to the Nagle penalty.
    small_message_bytes: int = 512

    #: Mean interval between GC pauses per process (s); 0 disables GC.
    gc_interval: float = 0.0
    #: Mean GC pause duration (s).
    gc_pause: float = 0.0

    def __post_init__(self) -> None:
        # Eager validation: a mistyped constant surfaces here, at
        # construction, instead of as a nonsense virtual-time schedule
        # deep inside a run (same convention as FaultTolerance and the
        # rescale preconditions).
        if self.latency < 0:
            raise ValueError(
                "NetworkConfig.latency must be >= 0 (got %r)" % (self.latency,)
            )
        if self.local_latency < 0:
            raise ValueError(
                "NetworkConfig.local_latency must be >= 0 (got %r)"
                % (self.local_latency,)
            )
        if self.bandwidth <= 0:
            raise ValueError(
                "NetworkConfig.bandwidth must be > 0 bytes/s (got %r)"
                % (self.bandwidth,)
            )
        if self.per_message_bytes < 0:
            raise ValueError(
                "NetworkConfig.per_message_bytes must be >= 0 (got %r)"
                % (self.per_message_bytes,)
            )
        if not 0.0 <= self.packet_loss_probability <= 1.0:
            raise ValueError(
                "NetworkConfig.packet_loss_probability must be a "
                "probability in [0, 1] (got %r)"
                % (self.packet_loss_probability,)
            )
        if self.retransmit_timeout < 0:
            raise ValueError(
                "NetworkConfig.retransmit_timeout must be >= 0 (got %r)"
                % (self.retransmit_timeout,)
            )
        if self.nagle_delay < 0:
            raise ValueError(
                "NetworkConfig.nagle_delay must be >= 0 (got %r)"
                % (self.nagle_delay,)
            )
        if self.small_message_bytes < 0:
            raise ValueError(
                "NetworkConfig.small_message_bytes must be >= 0 (got %r)"
                % (self.small_message_bytes,)
            )
        if self.gc_interval < 0:
            raise ValueError(
                "NetworkConfig.gc_interval must be >= 0 (got %r)"
                % (self.gc_interval,)
            )
        if self.gc_pause < 0:
            raise ValueError(
                "NetworkConfig.gc_pause must be >= 0 (got %r)" % (self.gc_pause,)
            )
        if self.gc_pause > 0 and self.gc_interval == 0:
            raise ValueError(
                "NetworkConfig.gc_pause=%r needs gc_interval > 0: the "
                "pause duration is drawn per pause, but pauses are only "
                "scheduled when an interval is set" % (self.gc_pause,)
            )


@dataclass
class TrafficStats:
    """Bytes and message counts by traffic category."""

    bytes_by_kind: Dict[str, int] = field(default_factory=dict)
    messages_by_kind: Dict[str, int] = field(default_factory=dict)

    def record(self, kind: str, size: int) -> None:
        self.bytes_by_kind[kind] = self.bytes_by_kind.get(kind, 0) + size
        self.messages_by_kind[kind] = self.messages_by_kind.get(kind, 0) + 1

    def bytes(self, kind: str) -> int:
        return self.bytes_by_kind.get(kind, 0)

    def messages(self, kind: str) -> int:
        return self.messages_by_kind.get(kind, 0)

    def total_bytes(self) -> int:
        return sum(self.bytes_by_kind.values())


class Network:
    """Point-to-point message delivery between processes.

    Remote messages occupy the sender's egress NIC and the receiver's
    ingress NIC for ``size / bandwidth`` seconds each, so concurrent
    transfers queue — reproducing both the throughput ceiling of Figure
    6a and the incast behaviour at accumulators.  Delivery between a
    pair of processes is FIFO (TCP in-order semantics).
    """

    def __init__(self, sim: Simulator, num_processes: int, config: NetworkConfig):
        self.sim = sim
        self.config = config
        self.num_processes = num_processes
        self.stats = TrafficStats()
        self._egress_free = [0.0] * num_processes
        self._ingress_free = [0.0] * num_processes
        self._fifo_last: Dict[Tuple[int, int], float] = {}
        self._gc_busy_until = [0.0] * num_processes
        #: Messages sent but not yet delivered.  The checkpoint barrier
        #: waits for this to reach zero; failure injection zeroes it.
        self.in_flight = 0
        #: The subset of :attr:`in_flight` that is failure-detector
        #: heartbeat traffic.  Heartbeats flow for as long as the
        #: computation runs, so quiescence checks (checkpoint barriers,
        #: empty-restore-set probes) use :attr:`data_in_flight` — they
        #: would otherwise never fire with a supervisor attached.
        self.heartbeat_in_flight = 0
        self._generation = 0
        #: Injected network partitions (see :meth:`partition`): dicts
        #: with keys ``a``, ``b``, ``start``, ``heal`` (None = never
        #: heals) and ``one_way``.
        self.partitions = []
        #: Messages silently lost to a never-healing partition.
        self.partition_drops = 0
        #: Observability sink (repro.obs.TraceSink); None = tracing off.
        self.trace = None
        if config.gc_interval > 0:
            for process in range(num_processes):
                self._schedule_gc(process)

    # ------------------------------------------------------------------
    # GC pauses (section 3.5): a paused process neither sends nor
    # receives until the collector finishes.
    # ------------------------------------------------------------------

    def _schedule_gc(self, process: int) -> None:
        interval = self.sim.rng.expovariate(1.0 / self.config.gc_interval)

        def pause() -> None:
            duration = self.sim.rng.expovariate(1.0 / self.config.gc_pause)
            self._gc_busy_until[process] = max(
                self._gc_busy_until[process], self.sim.now + duration
            )
            self._schedule_gc(process)

        self.sim.schedule_background(interval, pause)

    def process_available_at(self, process: int) -> float:
        """Earliest time the process can do work (after any GC pause)."""
        return max(self.sim.now, self._gc_busy_until[process])

    @property
    def data_in_flight(self) -> int:
        """In-flight messages excluding detector heartbeats — the count
        quiescence-sensitive machinery waits on."""
        return self.in_flight - self.heartbeat_in_flight

    # ------------------------------------------------------------------
    # Elastic rescaling.
    # ------------------------------------------------------------------

    def add_process(self) -> int:
        """Grow the topology by one process and return its index.

        The new process gets fresh NIC occupancy state and (when the
        straggler model is on) its own GC pause schedule.  Departed
        processes keep their slots — process indices are stable for the
        life of the simulation — so removal needs no network change.
        """
        process = self.num_processes
        self.num_processes += 1
        self._egress_free.append(0.0)
        self._ingress_free.append(0.0)
        self._gc_busy_until.append(0.0)
        if self.config.gc_interval > 0:
            self._schedule_gc(process)
        return process

    # ------------------------------------------------------------------
    # Network partitions (fault injection for the failure detector).
    # ------------------------------------------------------------------

    def partition(
        self,
        a: int,
        b: int,
        at: float = None,
        heal_at: float = None,
        one_way: bool = False,
    ) -> Dict:
        """Cut the link between processes ``a`` and ``b``.

        TCP-retransmit semantics: a message sent across the cut while
        the partition is active is not lost outright — the sender keeps
        retransmitting, and the message arrives one latency after
        ``heal_at`` (plus any queueing it would have paid anyway).  A
        partition with ``heal_at=None`` never heals: affected messages
        are dropped silently (counted in :attr:`partition_drops`), which
        is what makes a one-way partition produce a *zombie* — a process
        that keeps talking but can no longer be heard.

        ``one_way`` blocks only the ``a -> b`` direction; the default
        cuts both.  Returns the partition record (mutable: a test can
        adjust ``heal`` before traffic crosses it).
        """
        if a == b:
            raise ValueError("partition(%d, %d): a process cannot be "
                             "partitioned from itself" % (a, b))
        for process in (a, b):
            if not 0 <= process < self.num_processes:
                raise ValueError(
                    "partition endpoint %d out of range (network has %d "
                    "processes)" % (process, self.num_processes)
                )
        start = self.sim.now if at is None else at
        if heal_at is not None and heal_at <= start:
            raise ValueError(
                "partition heal_at=%r must be after its start %r"
                % (heal_at, start)
            )
        record = {"a": a, "b": b, "start": start, "heal": heal_at,
                  "one_way": one_way}
        self.partitions.append(record)
        return record

    def _partition_barrier(self, src: int, dst: int, at: float):
        """Earliest time a ``src -> dst`` message sent at ``at`` can get
        through the active partitions: None when unobstructed, ``inf``
        when a never-healing partition swallows it, else the latest heal
        time among the partitions cutting the direction."""
        barrier = None
        for part in self.partitions:
            if at < part["start"]:
                continue
            heal = part["heal"]
            if heal is not None and at >= heal:
                continue
            if not (
                (part["a"] == src and part["b"] == dst)
                or (not part["one_way"] and part["a"] == dst and part["b"] == src)
            ):
                continue
            if heal is None:
                return float("inf")
            barrier = heal if barrier is None else max(barrier, heal)
        return barrier

    # ------------------------------------------------------------------
    # Message delivery.
    # ------------------------------------------------------------------

    def send(
        self,
        src: int,
        dst: int,
        size: int,
        kind: str,
        deliver: Callable[[], None],
    ) -> float:
        """Model sending ``size`` payload bytes from ``src`` to ``dst``.

        ``deliver`` runs at the (virtual) arrival time, which is also
        returned.  ``kind`` tags the traffic for accounting.
        """
        config = self.config
        wire_size = size + config.per_message_bytes
        self.stats.record(kind, wire_size)
        now = self.sim.now
        self.in_flight += 1
        heartbeat = kind == "heartbeat"
        if heartbeat:
            self.heartbeat_in_flight += 1
        generation = self._generation

        def guarded_deliver() -> None:
            # A failure between send and arrival tears the channel down
            # (generation bump); the message is lost with the process.
            if generation != self._generation:
                return
            self.in_flight -= 1
            if heartbeat:
                self.heartbeat_in_flight -= 1
            deliver()

        if src == dst:
            arrival = now + config.local_latency
            self.sim.schedule_at(arrival, guarded_deliver)
            trace = self.trace
            if trace is not None:
                trace.emit(
                    TraceEvent(
                        "message",
                        now,
                        arrival - now,
                        perf_counter(),
                        -1,
                        src,
                        "",
                        (),
                        (src, dst, wire_size, kind),
                    )
                )
            return arrival
        transfer = wire_size / config.bandwidth
        start = max(now, self._egress_free[src], self._gc_busy_until[src])
        self._egress_free[src] = start + transfer
        # Cut-through: bytes stream, so the receive occupies the ingress
        # NIC for one transfer time beginning when the first byte lands
        # (or when the NIC frees up, under incast contention).
        receive_start = max(start + config.latency, self._ingress_free[dst])
        arrival = receive_start + transfer
        self._ingress_free[dst] = arrival
        if (
            config.nagle_delay > 0
            and wire_size < config.small_message_bytes
        ):
            arrival += config.nagle_delay
        if (
            config.packet_loss_probability > 0
            and self.sim.rng.random() < config.packet_loss_probability
        ):
            arrival += config.retransmit_timeout
        arrival = max(arrival, self._gc_busy_until[dst])
        if self.partitions:
            barrier = self._partition_barrier(src, dst, now)
            if barrier is not None:
                if barrier == float("inf"):
                    # A never-healing cut: the packet and all its
                    # retransmissions die.  The loss still settles the
                    # in-flight accounting at the nominal arrival time
                    # so quiescence checks are not pinned forever.
                    self.partition_drops += 1

                    def lost() -> None:
                        if generation != self._generation:
                            return
                        self.in_flight -= 1
                        if heartbeat:
                            self.heartbeat_in_flight -= 1

                    self.sim.schedule_at(arrival, lost)
                    return arrival
                # Retransmissions succeed one latency after the heal.
                arrival = max(arrival, barrier + config.latency)
        # FIFO per process pair.
        key = (src, dst)
        arrival = max(arrival, self._fifo_last.get(key, 0.0))
        self._fifo_last[key] = arrival
        self.sim.schedule_at(arrival, guarded_deliver)
        trace = self.trace
        if trace is not None:
            trace.emit(
                TraceEvent(
                    "message",
                    now,
                    arrival - now,
                    perf_counter(),
                    -1,
                    src,
                    "",
                    (),
                    (src, dst, wire_size, kind),
                )
            )
        return arrival

    # ------------------------------------------------------------------
    # Failure injection (section 3.4).
    # ------------------------------------------------------------------

    def teardown_inflight(self) -> None:
        """Drop every message currently in flight.

        Called when a process is killed: TCP connections to the dead
        process reset, and because recovery rolls *all* processes back to
        the last consistent checkpoint, surviving in-flight traffic
        belongs to the abandoned execution too.  Already-scheduled
        delivery events become no-ops via the generation check, and
        transport state (NIC occupancy, per-pair FIFO ordering) resets
        for the fresh connections of the recovered cluster.
        """
        self._generation += 1
        self.in_flight = 0
        self.heartbeat_in_flight = 0
        self._egress_free = [0.0] * self.num_processes
        self._ingress_free = [0.0] * self.num_processes
        self._fifo_last.clear()
