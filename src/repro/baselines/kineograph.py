"""A Kineograph-style snapshot pipeline (Figure 7c's comparison system).

Kineograph [10] separates ingest nodes from compute nodes: incoming
tweets are replicated synchronously, accumulated into periodic global
*snapshots*, and each snapshot is processed by a batch graph
computation.  Results therefore lag the input by the snapshot interval
plus the compute time (the paper reports ~90 s at 185 K tweets/s, 10 s
at reduced rates) — versus Naiad's tens-of-milliseconds epochs.

This engine really computes k-exposure over each snapshot and models
the pipeline's timing: tweets arrive continuously, a snapshot closes
every ``snapshot_interval`` seconds, and snapshots queue behind an
ongoing computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple


@dataclass
class KineographCosts:
    #: Snapshot (epoch) interval, seconds.
    snapshot_interval: float = 10.0
    #: Synchronous ingest replication cost per tweet, seconds.
    ingest_per_tweet: float = 4e-6
    #: Batch compute cost per tweet in a snapshot, seconds.
    compute_per_tweet: float = 3e-6
    #: Fixed per-snapshot overhead (scheduling, snapshot sealing).
    snapshot_overhead: float = 2.0


class KineographEngine:
    """Replays a tweet stream through the snapshot pipeline."""

    def __init__(
        self,
        num_machines: int = 32,
        costs: KineographCosts = KineographCosts(),
    ):
        self.num_machines = num_machines
        self.costs = costs
        #: (snapshot close time, result availability time, tweet count)
        self.timeline: List[Tuple[float, float, int]] = []
        #: (kill time, recompute finish time) for each injected failure.
        self.failures: List[Tuple[float, float]] = []

    def max_throughput(self) -> float:
        """Tweets/second before the compute stage becomes the bottleneck."""
        per_tweet = (
            self.costs.ingest_per_tweet + self.costs.compute_per_tweet
        ) / self.num_machines
        return 1.0 / per_tweet

    def replay(
        self,
        tweets: Sequence[Tuple[int, str]],
        followers: Sequence[Tuple[int, int]],
        arrival_rate: float,
        duration: float,
        kill_at: float = None,
        restart_delay: float = 5.0,
    ) -> Dict[str, int]:
        """Process ``duration`` seconds of stream at ``arrival_rate``.

        ``tweets`` supplies the content (cycled as needed).  Returns the
        final k-exposure counts; :attr:`timeline` records when each
        snapshot's results became available, from which result staleness
        is derived.

        ``kill_at`` injects a machine failure at that time.  Ingest is
        synchronously replicated, so no data is lost — but the snapshot
        computation in progress at the failure loses its partial results
        and recomputes from scratch once the machine's shards have been
        reassigned (``restart_delay``, Kineograph's reported tens of
        seconds of fail-over).  Every queued snapshot behind it slips by
        the same amount: the failure shows up purely as added staleness,
        never as wrong counts.
        """
        costs = self.costs
        follows: Dict[int, List[int]] = {}
        for follower, followee in followers:
            follows.setdefault(followee, []).append(follower)
        exposures: Set[Tuple[int, str]] = set()
        counts: Dict[str, int] = {}
        compute_free_at = 0.0
        time = 0.0
        index = 0
        while time < duration:
            close_time = time + costs.snapshot_interval
            batch = int(arrival_rate * costs.snapshot_interval)
            for _ in range(batch):
                user, tag = tweets[index % len(tweets)]
                index += 1
                for follower in follows.get(user, ()):
                    if (follower, tag) not in exposures:
                        exposures.add((follower, tag))
                        counts[tag] = counts.get(tag, 0) + 1
            compute_time = (
                costs.snapshot_overhead
                + batch
                * (costs.ingest_per_tweet + costs.compute_per_tweet)
                / self.num_machines
            )
            start = max(close_time, compute_free_at)
            ready = start + compute_time
            if kill_at is not None and kill_at < ready:
                if start <= kill_at:
                    # The in-progress batch computation dies: reassign
                    # the machine's shards, recompute the snapshot.
                    ready = kill_at + restart_delay + compute_time
                else:
                    # Failure while this snapshot was still accumulating
                    # or queued: its compute waits out the fail-over.
                    ready = max(start, kill_at + restart_delay) + compute_time
                self.failures.append((kill_at, ready))
                kill_at = None  # one failure per replay
            compute_free_at = ready
            self.timeline.append((close_time, ready, batch))
            time = close_time
        return counts

    def mean_result_delay(self) -> float:
        """Average time from a tweet's arrival to its visible result.

        A tweet arriving uniformly within a snapshot waits half the
        interval for the snapshot to close, then for the computation.
        """
        if not self.timeline:
            return 0.0
        delays = [
            (ready - close) + self.costs.snapshot_interval / 2
            for close, ready, _ in self.timeline
        ]
        return sum(delays) / len(delays)
