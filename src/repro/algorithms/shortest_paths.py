"""Approximate shortest paths via landmarks (Table 1's ASP).

All-pairs shortest paths on web-scale graphs is approximated by exact
BFS from a set of landmark nodes; the distance between any two nodes is
then estimated through the triangle inequality over landmarks — the
standard sketch the literature (and the paper's 1,131-second ASP run)
uses.  The dataflow is asynchronous multi-source BFS: per-node state
holds the best known distance to each landmark, improvements propagate
immediately from ``on_recv`` without coordination, and the loop drains
at the fixed point.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.timestamp import Timestamp
from ..core.vertex import Vertex
from ..lib.stream import Stream, hash_partitioner


class MultiSourceBfsVertex(Vertex):
    """Asynchronous BFS from several landmarks simultaneously.

    Input 0 (by node): ``("edge", node, neighbour)`` adjacency arcs and
    ``("seed", landmark, landmark)`` seed records.  Input 1: distance
    proposals ``(node, landmark, distance)`` from the feedback edge.
    Output 0: proposals.  Output 1: improvements (reduce with min per
    ``(node, landmark)`` downstream).
    """

    def __init__(self):
        super().__init__()
        #: epoch -> (adjacency, {node: {landmark: best distance}})
        self.state: Dict[int, Tuple[Dict, Dict]] = {}

    def _epoch_state(self, epoch: int):
        state = self.state.get(epoch)
        if state is None:
            state = self.state[epoch] = ({}, {})
        return state

    def on_recv(self, input_port: int, records: List[Any], timestamp: Timestamp) -> None:
        adjacency, distances = self._epoch_state(timestamp.epoch)
        proposals: List[Tuple[Any, Any, int]] = []
        improvements: List[Tuple[Any, Any, int]] = []

        def improve(node, landmark, distance):
            best = distances.setdefault(node, {})
            if landmark not in best or distance < best[landmark]:
                best[landmark] = distance
                improvements.append((node, landmark, distance))
                for neighbour in adjacency.get(node, ()):
                    proposals.append((neighbour, landmark, distance + 1))

        if input_port == 0:
            for kind, node, payload in records:
                if kind == "edge":
                    neighbours = adjacency.setdefault(node, [])
                    neighbours.append(payload)
                    # Late edges forward whatever this node already knows.
                    for landmark, distance in distances.get(node, {}).items():
                        proposals.append((payload, landmark, distance + 1))
                else:  # seed
                    improve(node, payload, 0)
        else:
            for node, landmark, distance in records:
                improve(node, landmark, distance)
        if proposals:
            self.send_by(0, proposals, timestamp)
        if improvements:
            self.send_by(1, improvements, timestamp)


def approximate_shortest_paths(
    edges: Stream,
    landmarks: Sequence[Any],
    max_iterations: Optional[int] = None,
    name: str = "asp",
) -> Stream:
    """``((node, landmark), distance)`` per epoch of undirected edges."""
    landmarks = list(landmarks)

    def to_records(edge):
        u, v = edge
        return [("edge", u, v), ("edge", v, u)]

    arcs = edges.select_many(to_records, name="%s.arcs" % name)
    computation = edges.computation
    seeded = arcs.concat(
        edges.buffered(
            lambda records: [("seed", landmark, landmark) for landmark in landmarks]
            if records
            else [],
            partitioner=lambda record: 0,
            name="%s.seeds" % name,
        ),
        name="%s.input" % name,
    )
    with seeded.scoped_loop(name=name, max_iterations=max_iterations) as loop:
        stage = loop.stage(name, lambda s, w: MultiSourceBfsVertex(), 2, 2)
        loop.entered.connect_to(
            stage, 0, partitioner=hash_partitioner(lambda rec: rec[1])
        )
        loop.feed(Stream(computation, stage, 0))
        loop.feedback.connect_to(
            stage, 1, partitioner=hash_partitioner(lambda rec: rec[0])
        )
        improvements = loop.leave_with(Stream(computation, stage, 1))
    return improvements.aggregate_by(
        lambda rec: (rec[0], rec[1]),
        lambda rec: rec[2],
        min,
        name="%s.final" % name,
    )


def asp_oracle(
    edges: List[Tuple[Any, Any]], landmarks: Sequence[Any]
) -> Dict[Tuple[Any, Any], int]:
    """Reference BFS distances from each landmark (undirected)."""
    adjacency: Dict[Any, List[Any]] = {}
    for u, v in edges:
        adjacency.setdefault(u, []).append(v)
        adjacency.setdefault(v, []).append(u)
    result: Dict[Tuple[Any, Any], int] = {}
    for landmark in landmarks:
        if landmark not in adjacency:
            result[(landmark, landmark)] = 0
            continue
        distances = {landmark: 0}
        queue = deque([landmark])
        while queue:
            node = queue.popleft()
            for neighbour in adjacency[node]:
                if neighbour not in distances:
                    distances[neighbour] = distances[node] + 1
                    queue.append(neighbour)
        for node, distance in distances.items():
            result[(node, landmark)] = distance
    return result
