"""Graphviz DOT rendering of timely dataflow graphs.

``to_dot(graph)`` produces a DOT description with loop contexts drawn
as nested clusters and the system stages (ingress/egress/feedback)
visually distinguished — handy when debugging graph construction or
documenting a dataflow's shape.

Stages the plan optimizer fused (``repro.opt``; their ``opspec``
carries constituent names) render as their own cluster containing the
original operators chained left to right, so an optimized graph shows
both the physical stage boundary and what was merged into it.

The output is plain text; render it with ``dot -Tsvg`` or any Graphviz
viewer.  No Graphviz dependency is required to generate it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .graph import DataflowGraph, LoopContext, Stage, StageKind

_SHAPES = {
    StageKind.INPUT: "invhouse",
    StageKind.INGRESS: "rarrow",
    StageKind.EGRESS: "larrow",
    StageKind.FEEDBACK: "invtriangle",
    StageKind.NORMAL: "box",
}


def _escape(text: str) -> str:
    return text.replace('"', '\\"')


def _constituents(stage: Stage) -> tuple:
    """The operator names a fused super-vertex absorbed, or ()."""
    spec = getattr(stage, "opspec", None)
    if spec is not None and spec.constituents:
        return tuple(spec.constituents)
    return ()


def to_dot(graph: DataflowGraph, name: str = "dataflow") -> str:
    """Render the logical graph (stages and connectors) as DOT text."""
    fused = {
        stage: _constituents(stage)
        for stage in graph.stages
        if _constituents(stage)
    }
    lines: List[str] = [
        'digraph "%s" {' % _escape(name),
        "  rankdir=LR;",
        "  node [fontsize=10];",
    ]
    if fused:
        # lhead/ltail anchors below clip edges at the fused clusters.
        lines.append("  compound=true;")

    by_context: Dict[Optional[LoopContext], List[Stage]] = {}
    for stage in graph.stages:
        by_context.setdefault(stage.context, []).append(stage)

    def emit_context(context: Optional[LoopContext], indent: str) -> None:
        for stage in by_context.get(context, ()):
            parts = fused.get(stage)
            if parts:
                # A fused super-vertex: a cluster listing the original
                # operators, chained in pipeline order.
                lines.append(
                    "%s  subgraph cluster_fused_%d {" % (indent, stage.index)
                )
                lines.append(
                    '%s    label="fused #%d"; color="#bb7733"; style=rounded;'
                    % (indent, stage.index)
                )
                for position, part in enumerate(parts):
                    lines.append(
                        '%s    s%d_p%d [label="%s" shape=box];'
                        % (indent, stage.index, position, _escape(part))
                    )
                for position in range(len(parts) - 1):
                    lines.append(
                        '%s    s%d_p%d -> s%d_p%d [color="#bb7733"];'
                        % (indent, stage.index, position, stage.index, position + 1)
                    )
                lines.append("%s  }" % indent)
                continue
            label = "%s\\n#%d" % (_escape(stage.name), stage.index)
            style = ' style="filled" fillcolor="#eeeeee"' if (
                stage.kind is not StageKind.NORMAL
            ) else ""
            lines.append(
                '%s  s%d [label="%s" shape=%s%s];'
                % (indent, stage.index, label, _SHAPES[stage.kind], style)
            )
        for child in graph.contexts:
            if child.parent is context:
                lines.append("%s  subgraph cluster_%s {" % (indent, id(child)))
                lines.append(
                    '%s    label="%s (depth %d)"; color="#888888";'
                    % (indent, _escape(child.name), child.depth)
                )
                emit_context(child, indent + "  ")
                lines.append("%s  }" % indent)

    emit_context(None, "")

    def endpoint(stage: Stage, outgoing: bool) -> str:
        """Node id an edge attaches to (last/first part for fused)."""
        parts = fused.get(stage)
        if not parts:
            return "s%d" % stage.index
        position = len(parts) - 1 if outgoing else 0
        return "s%d_p%d" % (stage.index, position)

    for connector in graph.connectors:
        attributes = []
        if connector.partitioner is not None:
            attributes.append('label="⇄" color="#3355bb"')
        if connector.src.kind is StageKind.FEEDBACK or (
            connector.dst.kind is StageKind.FEEDBACK
        ):
            attributes.append("style=dashed")
        if connector.src in fused:
            attributes.append("ltail=cluster_fused_%d" % connector.src.index)
        if connector.dst in fused:
            attributes.append("lhead=cluster_fused_%d" % connector.dst.index)
        lines.append(
            "  %s -> %s%s;"
            % (
                endpoint(connector.src, True),
                endpoint(connector.dst, False),
                " [%s]" % " ".join(attributes) if attributes else "",
            )
        )
    lines.append("}")
    return "\n".join(lines)
