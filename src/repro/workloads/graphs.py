"""Synthetic graph generators for the evaluation workloads.

The paper's experiments use graphs we cannot ship: a 300M-edge uniform
random graph (Figure 6c), weak-scaling random graphs with 18.2M edges
per computer (Figure 6e), the Twitter follower graph (Figure 7a) and the
ClueWeb09 Category A web graph (Table 1).  These generators produce
scaled-down graphs with the same statistical character: uniform random
(Erdős–Rényi-style multigraphs) for the WCC experiments and power-law
(preferential attachment) graphs for the social/web workloads.
"""

from __future__ import annotations

import random
from typing import List, Tuple

Edge = Tuple[int, int]


def uniform_random_graph(num_nodes: int, num_edges: int, seed: int = 0) -> List[Edge]:
    """Uniform random directed edges (the paper's WCC input shape)."""
    rng = random.Random(seed)
    return [
        (rng.randrange(num_nodes), rng.randrange(num_nodes))
        for _ in range(num_edges)
    ]


def power_law_graph(
    num_nodes: int,
    edges_per_node: int = 4,
    seed: int = 0,
) -> List[Edge]:
    """Preferential-attachment graph (Twitter/web-like degree skew).

    Each arriving node links to ``edges_per_node`` targets chosen with
    probability proportional to in-degree (plus one smoothing), giving
    the heavy-tailed degree distribution that makes vertex-cut
    partitioning matter in Figure 7a.
    """
    rng = random.Random(seed)
    edges: List[Edge] = []
    # Repeated-endpoint trick: sampling uniformly from the endpoint list
    # is equivalent to degree-proportional sampling.
    endpoints: List[int] = [0]
    for node in range(1, num_nodes):
        for _ in range(edges_per_node):
            target = endpoints[rng.randrange(len(endpoints))]
            edges.append((node, target))
            endpoints.append(target)
        endpoints.append(node)
    return edges


def weak_scaling_graph(
    num_computers: int,
    nodes_per_computer: int,
    edges_per_computer: int,
    seed: int = 0,
) -> List[Edge]:
    """The Figure 6e construction: constant nodes/edges per computer.

    Nodes and edges grow linearly with the cluster size; edges connect
    uniformly random nodes across the whole (growing) graph, so the
    fraction of remote edges grows as ``(n-1)/n`` — the effect the paper
    uses to explain the weak-scaling degradation.
    """
    return uniform_random_graph(
        num_computers * nodes_per_computer,
        num_computers * edges_per_computer,
        seed=seed,
    )


def undirected_adjacency(edges: List[Edge]) -> dict:
    """Adjacency dict treating edges as undirected (for WCC oracles)."""
    adjacency: dict = {}
    for u, v in edges:
        adjacency.setdefault(u, []).append(v)
        adjacency.setdefault(v, []).append(u)
    return adjacency


def zorder(u: int, v: int, bits: int = 16) -> int:
    """Interleave the bits of ``(u, v)`` (a space-filling curve).

    Used by the "Naiad Edge" PageRank variant (section 6.1): edges close
    in (src, dst) space land in the same partition, approximating
    PowerGraph's vertex-cut objective with a cheap static function.
    """
    out = 0
    for bit in range(bits):
        out |= ((u >> bit) & 1) << (2 * bit + 1)
        out |= ((v >> bit) & 1) << (2 * bit)
    return out
