"""Tests for cut-through delivery and bounded re-entrancy (section 3.2)."""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro import Computation, Vertex
from repro.lib import Stream


def run_wordcount(eager, epochs):
    comp = Computation(eager_delivery=eager)
    inp = comp.new_input()
    out = Counter()
    (
        Stream.from_input(inp)
        .select_many(str.split)
        .count_by(lambda w: w)
        .subscribe(lambda t, recs: out.update({(t.epoch, r) for r in recs}))
    )
    comp.build()
    max_queue = 0
    for records in epochs:
        inp.on_next(records)
        max_queue = max(max_queue, len(comp._message_queue))
        comp.run()
    inp.on_completed()
    comp.run()
    assert comp.drained()
    return out, comp, max_queue


class TestEagerDelivery:
    @given(st.lists(st.lists(st.text("abc ", max_size=12), max_size=6), min_size=1, max_size=3))
    @settings(max_examples=20, deadline=None)
    def test_results_identical(self, epochs):
        queued, _, _ = run_wordcount(False, epochs)
        eager, _, _ = run_wordcount(True, epochs)
        assert queued == eager

    def test_queues_stay_small(self):
        epochs = [["a b c d e f g h"] * 10]
        _, comp_q, queue_q = run_wordcount(False, epochs)
        _, comp_e, queue_e = run_wordcount(True, epochs)
        assert queue_e < queue_q
        # Same number of message deliveries either way.
        assert comp_e.delivered_messages == comp_q.delivered_messages

    def test_iteration_with_eager_delivery(self):
        comp = Computation(eager_delivery=True, max_eager_depth=8)
        inp = comp.new_input()
        got = []
        (
            Stream.from_input(inp)
            .iterate(lambda s: s.select(lambda x: x - 1).where(lambda x: x > 0))
            .subscribe(lambda t, recs: got.extend(recs))
        )
        comp.build()
        inp.on_next([40])  # depth far beyond max_eager_depth
        inp.on_completed()
        comp.run()
        assert comp.drained()
        assert sorted(got) == list(range(1, 40))


class ReentrantVertex(Vertex):
    """Sends to itself through a pass-through neighbour; logs nesting."""

    reentrancy = 0  # overridden per test

    def __init__(self, log):
        super().__init__()
        self.log = log
        self.depth = 0

    def on_recv(self, port, records, t):
        self.depth += 1
        self.log.append(self.depth)
        try:
            value = records[0]
            if value > 0:
                self.send_by(0, [value - 1], t)
        finally:
            self.depth -= 1


def run_reentrant(reentrancy, start=4):
    comp = Computation(eager_delivery=True, max_eager_depth=64)
    inp = comp.new_input()
    log = []

    class V(ReentrantVertex):
        pass

    V.reentrancy = reentrancy
    # The vertex feeds itself through a cycle, so it must sit inside a
    # loop context with a feedback stage.
    loop = comp.new_loop_context()
    ingress = comp.add_ingress(loop)
    inner = comp.graph.new_stage("reentrant", lambda s, w: V(log), 2, 1, context=loop)
    feedback = comp.add_feedback(loop, max_iterations=50)
    comp.connect(inp.stage, ingress)
    comp.graph.connect(ingress, 0, inner, 0)
    comp.graph.connect(inner, 0, feedback, 0)
    comp.graph.connect(feedback, 0, inner, 1)
    comp.build()
    inp.on_next([start])
    inp.on_completed()
    comp.run()
    assert comp.drained()
    return log


class TestReentrancy:
    def test_default_not_reentrant(self):
        # Without re-entrancy the feedback deliveries queue: the vertex
        # never observes nesting depth > 1.
        log = run_reentrant(reentrancy=0)
        assert max(log) == 1
        assert len(log) == 5  # 4,3,2,1,0

    def test_bounded_reentrancy_allows_nesting(self):
        log = run_reentrant(reentrancy=2)
        assert max(log) > 1
        assert max(log) <= 3  # 1 initial + 2 re-entrant
        assert len(log) == 5

    def test_results_independent_of_reentrancy(self):
        assert sorted(run_reentrant(0)) != [] and len(run_reentrant(0)) == len(
            run_reentrant(3)
        )
