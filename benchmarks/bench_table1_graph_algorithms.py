"""Table 1: PageRank / SCC / WCC / ASP versus batch systems.

Najork et al. run the four algorithms over the ClueWeb09 Category A web
graph on PDW, DryadLINQ and SHS; the paper reruns them on Naiad with 16
equivalent computers and reports speedups up to ~600x, attributed to
keeping application state in memory between iterations (no per-job
reload/serialize) and to incremental algorithms that do less work per
iteration.

Reproduction: a scaled-down synthetic web graph; Naiad times from the
simulated 16-computer cluster; baseline times from the executable
batch engine in its three personalities (same algorithms, dense
bulk-synchronous iterations, per-iteration state serialization).  The
claim checked is the *shape*: Naiad wins every row by a large factor,
and the baseline ordering matches Najork et al.
"""

import random

from repro.lib import Stream
from repro.algorithms import (
    approximate_shortest_paths,
    pagerank_vertex,
    strongly_connected_components,
    weakly_connected_components,
)
from repro.baselines import DRYADLINQ, PDW, SHS, BatchIterativeEngine
from repro.runtime import ClusterComputation
from repro.workloads import power_law_graph

from bench_harness import format_table, human_time, report

COMPUTERS = 16
PAGERANK_ITERATIONS = 10
LANDMARKS = [0, 1, 2, 3]

#: Web-like graph: power-law out-degrees plus random "back" links so
#: non-trivial strongly connected components exist.
def make_web_graph(num_nodes=1200, seed=7):
    edges = power_law_graph(num_nodes, edges_per_node=3, seed=seed)
    rng = random.Random(seed)
    edges += [
        (rng.randrange(num_nodes), rng.randrange(num_nodes))
        for _ in range(num_nodes // 2)
    ]
    return edges


GRAPH = make_web_graph()


def cluster():
    return ClusterComputation(
        num_processes=COMPUTERS,
        workers_per_process=1,
        progress_mode="local+global",
    )


def run_naiad(builder) -> float:
    comp = cluster()
    inp = comp.new_input()
    builder(Stream.from_input(inp)).subscribe(lambda t, recs: None)
    comp.build()
    inp.on_next(GRAPH)
    inp.on_completed()
    comp.run()
    assert comp.drained(), comp.debug_state()
    return comp.now


def run_naiad_scc() -> float:
    holder = {}

    def factory():
        holder["comp"] = cluster()
        return holder["comp"]

    strongly_connected_components(factory, GRAPH)
    return holder["comp"].now


def test_table1_graph_algorithms(benchmark):
    def experiment():
        naiad = {
            "PageRank": run_naiad(
                lambda s: pagerank_vertex(s, iterations=PAGERANK_ITERATIONS)
            ),
            "SCC": run_naiad_scc(),
            "WCC": run_naiad(weakly_connected_components),
            "ASP": run_naiad(
                lambda s: approximate_shortest_paths(s, LANDMARKS)
            ),
        }
        baselines = {}
        for name, costs in [("PDW", PDW), ("DryadLINQ", DRYADLINQ), ("SHS", SHS)]:
            times = {}
            engine = BatchIterativeEngine(COMPUTERS, costs)
            engine.pagerank(GRAPH, iterations=PAGERANK_ITERATIONS)
            times["PageRank"] = engine.elapsed
            engine = BatchIterativeEngine(COMPUTERS, costs)
            engine.scc(GRAPH)
            times["SCC"] = engine.elapsed
            engine = BatchIterativeEngine(COMPUTERS, costs)
            engine.wcc(GRAPH)
            times["WCC"] = engine.elapsed
            engine = BatchIterativeEngine(COMPUTERS, costs)
            engine.asp(GRAPH, LANDMARKS)
            times["ASP"] = engine.elapsed
            baselines[name] = times
        return naiad, baselines

    naiad, baselines = benchmark.pedantic(experiment, rounds=1, iterations=1)

    algorithms = ["PageRank", "SCC", "WCC", "ASP"]
    rows = []
    for algorithm in algorithms:
        rows.append(
            (
                algorithm,
                human_time(baselines["PDW"][algorithm]),
                human_time(baselines["DryadLINQ"][algorithm]),
                human_time(baselines["SHS"][algorithm]),
                human_time(naiad[algorithm]),
                "%.0fx" % (baselines["DryadLINQ"][algorithm] / naiad[algorithm]),
            )
        )
    lines = format_table(
        ["algorithm", "PDW", "DryadLINQ", "SHS", "Naiad", "vs DryadLINQ"],
        rows,
    )
    # At benchmark scale, fixed job overheads dominate the executable
    # baselines (SHS's lower per-job overhead makes it look fastest).
    # At the ClueWeb Category A scale the per-record terms dominate and
    # the ordering matches Najork et al.: extrapolate one PageRank row.
    clueweb_nodes, clueweb_edges = 1_000_000_000, 8_000_000_000
    extrapolated = {
        name: BatchIterativeEngine(COMPUTERS, costs).estimate_time(
            clueweb_edges + clueweb_nodes, clueweb_nodes, PAGERANK_ITERATIONS
        )
        for name, costs in [("PDW", PDW), ("DryadLINQ", DRYADLINQ), ("SHS", SHS)]
    }
    lines.append("")
    lines.append(
        "PageRank extrapolated to ClueWeb Category A (1B pages, 8B edges):"
    )
    lines.extend(
        format_table(
            ["system", "estimated", "paper"],
            [
                ("PDW", human_time(extrapolated["PDW"]), "156,982 s"),
                ("DryadLINQ", human_time(extrapolated["DryadLINQ"]), "68,791 s"),
                ("SHS", human_time(extrapolated["SHS"]), "836,455 s"),
            ],
        )
    )
    report("table1_graph_algorithms", lines)
    assert extrapolated["DryadLINQ"] < extrapolated["PDW"] < extrapolated["SHS"]

    # Naiad wins every row by a large factor (the paper: 24x-600x).
    for algorithm in algorithms:
        for system in ("PDW", "DryadLINQ", "SHS"):
            assert baselines[system][algorithm] / naiad[algorithm] > 10, (
                algorithm,
                system,
            )
    # Every engine personality pays at least one job overhead per
    # iteration; Naiad's whole run is faster than a single batch job
    # launch (the in-memory-state argument in its starkest form).
    assert max(naiad.values()) < DRYADLINQ.job_overhead
