"""Ablation: the micro-straggler mitigations of section 3.5.

The paper attributes low-latency scalability to a series of deliberate
mitigations: disabling Nagle's algorithm (a 200 ms penalty on small
messages under the default TCP configuration), reducing the minimum
retransmit timeout from 300 ms to 20 ms, and engineering GC pressure
down.  This ablation runs the Figure 6b barrier workload under four
configurations and shows each mitigation's contribution to the
coordination-latency distribution — the experiment the paper argues
from but does not plot.
"""

from repro.core import Timestamp, Vertex
from repro.lib import Stream
from repro.runtime import ClusterComputation
from repro.sim import NetworkConfig

from bench_harness import format_table, human_time, percentile, report

ITERATIONS = 100
COMPUTERS = 8

CONFIGS = {
    # Windows defaults: Nagle + delayed ACKs, 300 ms min RTO.
    "default TCP": NetworkConfig(
        nagle_delay=200e-3,
        packet_loss_probability=0.002,
        retransmit_timeout=300e-3,
        gc_interval=0.2,
        gc_pause=10e-3,
    ),
    "nagle off": NetworkConfig(
        nagle_delay=0.0,
        packet_loss_probability=0.002,
        retransmit_timeout=300e-3,
        gc_interval=0.2,
        gc_pause=10e-3,
    ),
    "+ 20ms RTO": NetworkConfig(
        nagle_delay=0.0,
        packet_loss_probability=0.002,
        retransmit_timeout=20e-3,
        gc_interval=0.2,
        gc_pause=10e-3,
    ),
    "+ GC tuning": NetworkConfig(
        nagle_delay=0.0,
        packet_loss_probability=0.002,
        retransmit_timeout=20e-3,
        gc_interval=2.0,
        gc_pause=2e-3,
    ),
}


class BarrierVertex(Vertex):
    def __init__(self, clock, samples):
        super().__init__()
        self.clock = clock
        self.samples = samples

    def on_recv(self, port, records, timestamp: Timestamp) -> None:
        self.notify_at(timestamp)

    def on_notify(self, timestamp: Timestamp) -> None:
        if self.worker == 0:
            self.samples.append(self.clock())
        if timestamp.counters[-1] + 1 < ITERATIONS:
            self.notify_at(timestamp.incremented())


def run_barrier(config: NetworkConfig):
    comp = ClusterComputation(
        num_processes=COMPUTERS,
        workers_per_process=1,
        progress_mode="local+global",
        network=config,
        seed=17,
    )
    samples = []
    inp = comp.new_input()
    with comp.scope("barrier", max_iterations=ITERATIONS) as loop:
        stage = loop.stage(
            "barrier", lambda s, w: BarrierVertex(lambda: comp.now, samples), 2, 1
        )
        loop.enter(Stream.from_input(inp)).connect_to(stage, 0)
        loop.feed(Stream(comp, stage, 0))
        loop.feedback.connect_to(stage, 1)
    comp.build()
    inp.on_next(list(range(COMPUTERS)))
    inp.on_completed()
    comp.run()
    assert comp.drained(), comp.debug_state()
    intervals = [b - a for a, b in zip(samples, samples[1:])]
    return {
        "median": percentile(intervals, 0.5),
        "p95": percentile(intervals, 0.95),
    }


def test_ablation_straggler_mitigations(benchmark):
    def experiment():
        return {name: run_barrier(config) for name, config in CONFIGS.items()}

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    order = ["default TCP", "nagle off", "+ 20ms RTO", "+ GC tuning"]
    report(
        "ablation_stragglers",
        format_table(
            ["configuration", "median", "p95"],
            [
                (name, human_time(results[name]["median"]), human_time(results[name]["p95"]))
                for name in order
            ],
        ),
    )

    # Nagle dominates everything when left on: the default configuration's
    # *median* suffers the 200 ms-class penalty the paper describes.
    assert results["default TCP"]["median"] > 50 * results["nagle off"]["median"]
    # Reducing the retransmit floor compresses the loss tail by ~an
    # order of magnitude (300 ms -> 20 ms events).
    assert results["nagle off"]["p95"] > 5 * results["+ 20ms RTO"]["p95"]
    # Each successive mitigation is no worse on the tail.
    previous = None
    for name in order:
        if previous is not None:
            assert results[name]["p95"] <= results[previous]["p95"] * 1.2
        previous = name
