"""repro — a Python reproduction of "Naiad: a timely dataflow system".

The package is organised as the paper's software stack (Figure 2):

- :mod:`repro.core` — the timely dataflow model: timestamps, path
  summaries, progress tracking, the vertex API and a single-threaded
  reference scheduler (sections 2 and 4.3).
- :mod:`repro.sim` — a discrete-event simulation substrate used to model
  a cluster (network links, stragglers) in virtual time.
- :mod:`repro.runtime` — the distributed runtime of section 3, executed
  on the simulator: workers, exchange connectors, the broadcast-based
  progress protocol with local/global accumulators, checkpointing.
- :mod:`repro.lib` — high-level libraries of section 4: LINQ-style
  operators, loops/iterate, Bloom-style asynchronous operators, Pregel,
  AllReduce and incremental (differential-style) collections.
- :mod:`repro.algorithms` — the applications of sections 5 and 6.
- :mod:`repro.workloads` — synthetic dataset generators.
- :mod:`repro.baselines` — the comparison systems of section 6.

Quickstart::

    from repro import Computation
    from repro.lib import Stream

    comp = Computation()
    words = Stream.from_input(comp.new_input("lines"))
    counts = (
        words.select_many(str.split)
             .count_by(lambda word: word)
             .subscribe(lambda t, records: print(t.epoch, sorted(records)))
    )
    comp.build()
    comp.inputs[0].on_next(["a b a"])
    comp.run()
"""

from .core import (
    Computation,
    InputHandle,
    Pointstamp,
    RuntimeDebugState,
    TimelyRuntime,
    Timestamp,
    Vertex,
)

__version__ = "1.0.0"

__all__ = [
    "Computation",
    "InputHandle",
    "Pointstamp",
    "RuntimeDebugState",
    "TimelyRuntime",
    "Timestamp",
    "Vertex",
    "__version__",
]
