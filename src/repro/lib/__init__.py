"""High-level programming libraries on timely dataflow (paper section 4).

- :mod:`repro.lib.stream` — LINQ-style fluent API and loop construction.
- :mod:`repro.lib.operators` — the operator vertices themselves.
- :mod:`repro.lib.bloom` — asynchronous (coordination-free) Datalog-style
  operators and monotonic aggregation.
- :mod:`repro.lib.pregel` — the Pregel bulk-synchronous vertex-program
  abstraction with combiners, aggregators and graph mutation.
- :mod:`repro.lib.allreduce` — data-parallel and binary-tree AllReduce
  collectives for iterative machine learning.
- :mod:`repro.lib.incremental` — incremental (differential-style)
  collections of difference records.
"""

from .allreduce import allreduce, tree_allreduce
from .bloom import async_distinct, async_join, monotonic_aggregate, transitive_closure
from .incremental import Collection, consolidate_diffs
from .pregel import NodeContext, final_states, pregel
from .stream import (
    FeedbackEdge,
    Loop,
    LoopScope,
    Probe,
    Stream,
    hash_partitioner,
)

__all__ = [
    "Collection",
    "FeedbackEdge",
    "Loop",
    "LoopScope",
    "NodeContext",
    "Probe",
    "Stream",
    "allreduce",
    "async_distinct",
    "async_join",
    "consolidate_diffs",
    "final_states",
    "hash_partitioner",
    "monotonic_aggregate",
    "pregel",
    "transitive_closure",
    "tree_allreduce",
]
