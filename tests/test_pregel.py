"""Tests for the Pregel library (section 4.2)."""

import pytest

from repro import Computation
from repro.lib import Stream, final_states, pregel
from repro.runtime import ClusterComputation


def run_pregel(graph, compute, max_supersteps, cluster=False, **kwargs):
    comp = (
        ClusterComputation(num_processes=2, workers_per_process=2)
        if cluster
        else Computation()
    )
    inp = comp.new_input()
    out = []
    states = pregel(Stream.from_input(inp), compute, max_supersteps, **kwargs)
    final_states(states).subscribe(lambda t, recs: out.extend(recs))
    comp.build()
    inp.on_next(graph)
    inp.on_completed()
    comp.run()
    assert comp.drained()
    return out


def cc_compute(ctx):
    best = min(ctx.messages) if ctx.messages else ctx.state
    if ctx.superstep == 0 or best < ctx.state:
        ctx.set_state(min(best, ctx.state))
        ctx.send_to_neighbors(ctx.state)
    ctx.vote_to_halt()


def undirected(edges, nodes):
    adj = {n: [] for n in nodes}
    for u, v in edges:
        adj[u].append(v)
        adj[v].append(u)
    return [(n, n, nbrs) for n, nbrs in adj.items()]


class TestConnectedComponents:
    @pytest.mark.parametrize("cluster", [False, True])
    def test_two_components(self, cluster):
        graph = undirected([(0, 1), (1, 2), (3, 4)], range(5))
        out = run_pregel(graph, cc_compute, 50, cluster=cluster)
        assert sorted(out) == [(0, 0), (1, 0), (2, 0), (3, 3), (4, 3)]

    def test_chain_converges(self):
        n = 12
        graph = undirected([(i, i + 1) for i in range(n - 1)], range(n))
        out = run_pregel(graph, cc_compute, 50)
        assert sorted(out) == [(i, 0) for i in range(n)]

    def test_multiple_epochs_independent(self):
        comp = Computation()
        inp = comp.new_input()
        per_epoch = {}
        states = pregel(Stream.from_input(inp), cc_compute, 50)
        final_states(states).subscribe(
            lambda t, recs: per_epoch.setdefault(t.epoch, []).extend(recs)
        )
        comp.build()
        inp.on_next(undirected([(0, 1)], range(2)))
        inp.on_next(undirected([], range(2)))
        inp.on_completed()
        comp.run()
        assert sorted(per_epoch[0]) == [(0, 0), (1, 0)]
        assert sorted(per_epoch[1]) == [(0, 0), (1, 1)]


class TestSupersteps:
    def test_max_supersteps_bounds_execution(self):
        seen = []

        def compute(ctx):
            seen.append(ctx.superstep)
            ctx.send(ctx.node, 1)  # never halts voluntarily

        run_pregel([(0, None, [])], compute, 5)
        assert max(seen) == 4
        assert sorted(set(seen)) == [0, 1, 2, 3, 4]

    def test_halted_node_reactivated_by_message(self):
        trace = []

        def compute(ctx):
            trace.append((ctx.node, ctx.superstep))
            if ctx.node == 0 and ctx.superstep == 0:
                ctx.send(1, "wake")
            ctx.vote_to_halt()

        run_pregel([(0, None, []), (1, None, [])], compute, 10)
        # Node 1 runs at superstep 0 (initially active) and again at 1.
        assert (1, 0) in trace and (1, 1) in trace
        # Node 0 runs only once.
        assert [t for t in trace if t[0] == 0] == [(0, 0)]


class TestCombiner:
    def test_combiner_reduces_messages(self):
        sums = {}

        def compute(ctx):
            if ctx.superstep == 0 and ctx.node != 99:
                ctx.send(99, ctx.node)
            elif ctx.node == 99 and ctx.messages:
                sums[ctx.superstep] = list(ctx.messages)
            ctx.vote_to_halt()

        graph = [(n, None, []) for n in range(4)] + [(99, None, [])]
        run_pregel(graph, compute, 10, combine=lambda a, b: a + b)
        # All four messages combined into one.
        assert sums == {1: [0 + 1 + 2 + 3]}


class TestAggregator:
    def test_aggregate_visible_next_superstep(self):
        observed = {}

        def compute(ctx):
            ctx.contribute(1)
            if ctx.superstep > 0:
                observed.setdefault(ctx.superstep, ctx.aggregate)
            if ctx.superstep < 2:
                ctx.send(ctx.node, 0)
            else:
                ctx.vote_to_halt()

        run_pregel(
            [(n, None, []) for n in range(3)],
            compute,
            10,
            aggregator=lambda a, b: a + b,
        )
        assert observed[1] == 3
        assert observed[2] == 3


class TestGraphMutation:
    def test_added_edge_used_next_superstep(self):
        reached = []

        def compute(ctx):
            if ctx.superstep == 0 and ctx.node == 0:
                ctx.add_edge(1)
                ctx.send(ctx.node, 0)  # keep self alive
            elif ctx.superstep == 1 and ctx.node == 0:
                ctx.send_to_neighbors("hello")
            if ctx.messages and ctx.node == 1:
                reached.append(ctx.messages[0])
            ctx.vote_to_halt()

        run_pregel([(0, None, []), (1, None, [])], compute, 10)
        assert reached == ["hello"]

    def test_removed_edge_not_used(self):
        deliveries = []

        def compute(ctx):
            if ctx.superstep == 0 and ctx.node == 0:
                ctx.remove_edge(1)
                ctx.send_to_neighbors("x")
            if ctx.node == 1 and ctx.messages:
                deliveries.extend(ctx.messages)
            ctx.vote_to_halt()

        run_pregel([(0, None, [1]), (1, None, [])], compute, 10)
        assert deliveries == []


class TestPageRankOnPregel:
    def test_ranks_sum_to_node_count(self):
        # The classic Pregel PageRank program (damping 0.85).
        def compute(ctx):
            if ctx.superstep == 0:
                ctx.set_state(1.0)
            else:
                ctx.set_state(0.15 + 0.85 * sum(ctx.messages))
            if ctx.edges:
                share = ctx.state / len(ctx.edges)
                ctx.send_to_neighbors(share)

        graph = [
            (0, 0.0, [1, 2]),
            (1, 0.0, [2]),
            (2, 0.0, [0]),
        ]
        out = run_pregel(graph, compute, 30, combine=lambda a, b: a + b)
        ranks = dict(out)
        assert sum(ranks.values()) == pytest.approx(3.0, rel=0.05)
        # Node 2 has the most in-links and the highest rank.
        assert ranks[2] > ranks[0] > ranks[1]
