"""Figure 8: interactive queries on a streaming iterative graph analysis.

The paper's culminating experiment (the Figure 1 application): 32,000
tweets/s feed an incremental connected-components computation that
maintains the most popular hashtag per user component, while 10
queries/s ask for the top hashtag in a user's component.  Two policies:

- "Fresh": a query's answer must reflect its own epoch — responses
  queue behind the 500-900 ms of update work (the "shark fin" sawtooth
  in the time series);
- "1 s delay": queries read slightly stale but consistent state —
  responses mostly under 10 ms.

Reproduction: the same dataflow (repro.algorithms.hashtag_components)
on the simulated cluster, tweets and queries injected on a virtual-time
schedule, response latency measured per query for both policies.
"""

from repro.lib import Stream
from repro.algorithms import hashtag_component_app
from repro.runtime import ClusterComputation
from repro.workloads import TweetGenerator, TweetStreamConfig

from bench_harness import format_table, human_time, percentile, report

COMPUTERS = 4
EPOCHS = 40
TWEETS_PER_EPOCH = 80
EPOCH_INTERVAL = 10e-3  # 8,000 tweets/s scaled from the paper's 32,000/s
QUERIES_PER_EPOCH = 1


def make_trace(seed=9):
    generator = TweetGenerator(
        TweetStreamConfig(num_users=1500, num_hashtags=80, seed=seed)
    )
    tweet_epochs = [generator.batch(TWEETS_PER_EPOCH) for _ in range(EPOCHS)]
    query_epochs = [
        [(generator.query(), "q%d.%d" % (epoch, i)) for i in range(QUERIES_PER_EPOCH)]
        for epoch in range(EPOCHS)
    ]
    return tweet_epochs, query_epochs


def run_policy(fresh: bool):
    tweet_epochs, query_epochs = make_trace()
    comp = ClusterComputation(
        num_processes=COMPUTERS,
        workers_per_process=1,
        progress_mode="local+global",
    )
    tweets_in = comp.new_input()
    queries_in = comp.new_input()
    issued = {}
    latencies = []

    def on_response(timestamp, responses):
        for query_id, _user, _tag in responses:
            if query_id in issued:
                latencies.append((issued[query_id], comp.now - issued[query_id]))

    hashtag_component_app(
        Stream.from_input(tweets_in),
        Stream.from_input(queries_in),
        on_response,
        fresh=fresh,
    )
    comp.build()

    def inject(epoch):
        for query in query_epochs[epoch]:
            issued[query[1]] = comp.now
        tweets_in.on_next(tweet_epochs[epoch])
        queries_in.on_next(query_epochs[epoch])
        if epoch + 1 == EPOCHS:
            tweets_in.on_completed()
            queries_in.on_completed()

    for epoch in range(EPOCHS):
        comp.sim.schedule_at(epoch * EPOCH_INTERVAL, lambda e=epoch: inject(e))
    comp.run()
    assert comp.drained(), comp.debug_state()
    assert len(latencies) == EPOCHS * QUERIES_PER_EPOCH
    return [latency for _, latency in sorted(latencies)]


def test_fig8_interactive_queries(benchmark):
    def experiment():
        return {"fresh": run_policy(True), "stale": run_policy(False)}

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for name, latencies in results.items():
        rows.append(
            (
                name,
                human_time(percentile(latencies, 0.5)),
                human_time(percentile(latencies, 0.9)),
                human_time(max(latencies)),
            )
        )
    lines = format_table(["policy", "median", "p90", "max"], rows)
    # A small time series excerpt (the figure's visual).
    lines.append("")
    lines.append("response-time series (one query per epoch):")
    series = [
        "  epoch %2d: fresh %-10s stale %s"
        % (i, human_time(f), human_time(s))
        for i, (f, s) in enumerate(zip(results["fresh"], results["stale"]))
        if i % 5 == 0
    ]
    lines.extend(series)
    report("fig8_interactive", lines)

    fresh_median = percentile(results["fresh"], 0.5)
    stale_median = percentile(results["stale"], 0.5)
    # Stale reads are dramatically faster (the paper: <10 ms vs the
    # 500-900 ms shark fin; the factor is what must reproduce).
    assert stale_median < fresh_median / 3
    # Fresh answers wait behind the epoch's update work: comparable to
    # the epoch processing time, not to a network round trip.
    assert fresh_median > 1e-3
    # Every stale answer still arrives quickly.
    assert percentile(results["stale"], 0.9) < fresh_median
