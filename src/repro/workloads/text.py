"""Synthetic text corpus for the WordCount experiments (Figures 6d/6e).

The paper uses a 12 GB Twitter corpus replicated to 128 GB.  We generate
Zipf-distributed words (natural-language frequency shape), sized down;
the WordCount benchmarks additionally scale record *counts* through the
cost model rather than materialising gigabytes.
"""

from __future__ import annotations

import random
from typing import List


def zipf_words(vocabulary_size: int) -> List[str]:
    return ["w%05d" % index for index in range(vocabulary_size)]


def generate_corpus(
    num_lines: int,
    words_per_line: int = 10,
    vocabulary_size: int = 1000,
    exponent: float = 1.1,
    seed: int = 0,
) -> List[str]:
    """Lines of Zipf-distributed words."""
    rng = random.Random(seed)
    vocabulary = zipf_words(vocabulary_size)
    # Precompute the cumulative Zipf distribution.
    weights = [1.0 / (rank + 1) ** exponent for rank in range(vocabulary_size)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cumulative.append(acc)

    def sample_word() -> str:
        x = rng.random()
        lo, hi = 0, vocabulary_size - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < x:
                lo = mid + 1
            else:
                hi = mid
        return vocabulary[lo]

    return [
        " ".join(sample_word() for _ in range(words_per_line))
        for _ in range(num_lines)
    ]
