"""Randomized validation over arbitrary legal graph topologies.

Two deep checks on randomly constructed timely dataflow graphs (random
chains, fan-out/concat diamonds, nested loops):

1. **Summary-table soundness**: every concrete path's composed summary
   is dominated by some element of the minimal-summary table that
   progress tracking uses — so could-result-in never misses a path.
2. **End-to-end execution**: the same random graph runs on the
   reference runtime and the simulated cluster with notification-safety
   recording vertices; results agree, notifications are never early,
   and everything drains.
"""

import random
from collections import Counter

import pytest

from repro import Computation, Vertex
from repro.core import PathSummary
from repro.lib import Stream
from repro.runtime import ClusterComputation


class ForwardRecorder(Vertex):
    """Forwards f(x) for each record; logs callbacks for safety checks."""

    def __init__(self, log, name, offset, keep_mod):
        super().__init__()
        self.log = log
        self.name = name
        self.offset = offset
        self.keep_mod = keep_mod
        self.requested = set()

    def on_recv(self, port, records, t):
        self.log.append(("recv", self.name, self.worker, t))
        if t not in self.requested:
            self.requested.add(t)
            self.notify_at(t)
        out = [x + self.offset for x in records if x % self.keep_mod != 0]
        if out:
            self.send_by(0, out, t)

    def on_notify(self, t):
        self.log.append(("notify", self.name, self.worker, t))


def build_random_graph(comp, rng, log, max_blocks=4, depth=0):
    """Random chain of stages/loops; returns the terminal stream."""
    stream = Stream.from_input(comp.new_input())

    def add_stage(stream, tag):
        offset = rng.randint(-2, 3)
        keep_mod = rng.choice([5, 7, 11])
        stage = comp.graph.new_stage(
            "s%s" % tag,
            lambda s, w, o=offset, k=keep_mod, n="s%s" % tag: ForwardRecorder(
                log, n, o, k
            ),
            1,
            1,
            context=stream.context,
        )
        partitioner = rng.choice([None, lambda x: x])
        stream.connect_to(stage, 0, partitioner)
        return Stream(comp, stage, 0)

    counter = [0]

    def block(stream, depth):
        counter[0] += 1
        tag = counter[0]
        kind = rng.random()
        if kind < 0.3 and depth < 2:
            # A loop: decrementing body to guarantee termination.
            def body(inner):
                inner = add_stage(inner, "%d.body" % tag)
                return inner.where(lambda x: 0 < x < 40)

            return stream.iterate(
                body, max_iterations=12, partitioner=lambda x: x
            )
        if kind < 0.5:
            # Diamond: fan out to two stages, concat back.
            left = add_stage(stream, "%d.l" % tag)
            right = add_stage(stream, "%d.r" % tag)
            return left.concat(right)
        return add_stage(stream, "%d" % tag)

    for _ in range(rng.randint(1, max_blocks)):
        stream = block(stream, depth)
    return stream


def enumerate_path_summaries(graph, max_length=10):
    """All composed summaries along concrete paths up to max_length."""
    links = []
    for connector in graph.connectors:
        links.append((connector, connector.dst, PathSummary.identity(connector.depth)))
    for stage in graph.stages:
        action = stage.timestamp_action()
        for outputs in stage.outputs:
            for connector in outputs:
                links.append((stage, connector, action))
    adjacency = {}
    for src, dst, summary in links:
        adjacency.setdefault(src, []).append((dst, summary))

    found = []
    locations = list(graph.stages) + list(graph.connectors)
    for start in locations:
        depth = (
            start.input_depth if hasattr(start, "input_depth") else start.depth
        )
        frontier = [(start, PathSummary.identity(depth))]
        for _ in range(max_length):
            next_frontier = []
            for node, summary in frontier:
                for succ, link in adjacency.get(node, ()):
                    composed = summary.then(link)
                    found.append((start, succ, composed))
                    next_frontier.append((succ, composed))
            frontier = next_frontier
            if len(found) > 20000:  # keep runtime bounded
                return found
    return found


def assert_safety(log):
    notified = {}
    for kind, name, worker, t in log:
        key = (name, worker)
        if kind == "notify":
            notified.setdefault(key, []).append(t)
        else:
            for earlier in notified.get(key, ()):
                assert not (
                    t.depth == earlier.depth and t.less_equal(earlier)
                ), "early notification at %r" % (key,)


SEEDS = list(range(12))


class TestSummarySoundness:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_path_dominated_by_table(self, seed):
        rng = random.Random(seed)
        comp = Computation()
        log = []
        build_random_graph(comp, rng, log).subscribe(lambda t, r: None)
        comp.build()
        table = comp.graph.summaries
        for src, dst, composed in enumerate_path_summaries(comp.graph):
            antichain = table.get((src, dst))
            assert antichain is not None, (src, dst)
            # Hierarchical entries may truncate to boundary (LCA) depth,
            # so compare at the *verdict* level: whenever the concrete
            # composed path says "could result in", so must the table.
            d1 = src.input_depth if hasattr(src, "input_depth") else src.depth
            d2 = composed.target_depth
            samples1 = [(0,) * d1, (1,) * d1, (0,) + (2,) * max(0, d1 - 1)]
            samples2 = [(0,) * d2, (2,) * d2, (4,) + (0,) * max(0, d2 - 1)]
            for c1 in samples1:
                for c2 in samples2:
                    if composed.dominates_counters(c1, c2):
                        assert any(
                            s.dominates_counters(c1, c2) for s in antichain
                        ), "verdict for %r from %r to %r (%r -> %r) lost" % (
                            composed,
                            src,
                            dst,
                            c1,
                            c2,
                        )


class TestRandomExecution:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_reference_runs_safely(self, seed):
        rng = random.Random(seed)
        comp = Computation()
        log = []
        out = Counter()
        build_random_graph(comp, rng, log).subscribe(
            lambda t, recs: out.update((t.epoch, r) for r in recs)
        )
        comp.build()
        inp = comp.inputs[0]
        for epoch in range(3):
            inp.on_next([rng.randint(1, 30) for _ in range(6)])
        inp.on_completed()
        comp.run()
        assert comp.drained()
        assert_safety(log)

    @pytest.mark.parametrize("seed", SEEDS[:6])
    def test_cluster_matches_reference(self, seed):
        results = []
        for make in (
            Computation,
            lambda: ClusterComputation(2, 2, progress_mode="local+global"),
        ):
            rng = random.Random(seed)
            comp = make()
            log = []
            out = Counter()
            build_random_graph(comp, rng, log).subscribe(
                lambda t, recs: out.update((t.epoch, r) for r in recs)
            )
            comp.build()
            inp = comp.inputs[0]
            data_rng = random.Random(seed + 1000)
            for epoch in range(3):
                inp.on_next([data_rng.randint(1, 30) for _ in range(6)])
            inp.on_completed()
            comp.run()
            assert comp.drained()
            assert_safety(log)
            results.append(out)
        assert results[0] == results[1]
